//===- analysis/Dominators.h - Dominator tree --------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm.
/// Used for natural-loop detection and for choosing the specialization
/// region of VRS (blocks dominated by the candidate's block).
///
//===----------------------------------------------------------------------===//

#ifndef OG_ANALYSIS_DOMINATORS_H
#define OG_ANALYSIS_DOMINATORS_H

#include "analysis/Cfg.h"

#include <vector>

namespace og {

/// Immediate-dominator tree over the reachable blocks of a Cfg.
class DominatorTree {
public:
  explicit DominatorTree(const Cfg &G);

  /// Immediate dominator of \p BB; the entry block's idom is itself;
  /// NoTarget for unreachable blocks.
  int32_t idom(int32_t BB) const { return Idom[BB]; }

  /// True when \p A dominates \p B (reflexive). Unreachable blocks dominate
  /// nothing and are dominated by nothing.
  bool dominates(int32_t A, int32_t B) const;

  /// All blocks dominated by \p BB (its dominator-tree subtree, including
  /// itself), in increasing block-id order.
  std::vector<int32_t> dominated(int32_t BB) const;

private:
  const Cfg *G;
  std::vector<int32_t> Idom;
};

} // namespace og

#endif // OG_ANALYSIS_DOMINATORS_H
