//===- analysis/Cfg.h - Control-flow graph ----------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Successor/predecessor lists and reverse postorder for one function.
/// All intra-procedural analyses start from this.
///
//===----------------------------------------------------------------------===//

#ifndef OG_ANALYSIS_CFG_H
#define OG_ANALYSIS_CFG_H

#include "program/Program.h"

#include <cstdint>
#include <vector>

namespace og {

/// Immutable CFG snapshot of a function. Rebuild after mutating the
/// function.
class Cfg {
public:
  explicit Cfg(const Function &F);

  const Function &function() const { return *F; }
  size_t numBlocks() const { return Succs.size(); }

  const std::vector<int32_t> &successors(int32_t BB) const {
    return Succs[BB];
  }
  const std::vector<int32_t> &predecessors(int32_t BB) const {
    return Preds[BB];
  }

  /// Blocks reachable from entry, in reverse postorder.
  const std::vector<int32_t> &rpo() const { return Rpo; }

  /// Position of \p BB in the RPO sequence; SIZE_MAX for unreachable.
  size_t rpoIndex(int32_t BB) const { return RpoIndex[BB]; }

  bool isReachable(int32_t BB) const {
    return RpoIndex[BB] != SIZE_MAX;
  }

private:
  const Function *F;
  std::vector<std::vector<int32_t>> Succs;
  std::vector<std::vector<int32_t>> Preds;
  std::vector<int32_t> Rpo;
  std::vector<size_t> RpoIndex;
};

} // namespace og

#endif // OG_ANALYSIS_CFG_H
