//===- analysis/ReachingDefs.cpp ------------------------------------------==//

#include "analysis/ReachingDefs.h"

#include <algorithm>
#include <cassert>

using namespace og;

namespace {

void setBit(std::vector<uint64_t> &B, size_t I) {
  B[I / 64] |= uint64_t(1) << (I % 64);
}
bool testBit(const std::vector<uint64_t> &B, size_t I) {
  return B[I / 64] & (uint64_t(1) << (I % 64));
}

} // namespace

void ReachingDefs::collectRegDefs(const Instruction &I,
                                  std::vector<Reg> &Out) const {
  Out.clear();
  if (I.isCall()) {
    for (Reg R = 0; R < NumRegs; ++R)
      if (isCallerSaved(R))
        Out.push_back(R);
    return;
  }
  if (I.hasDest() && I.Rd != RegZero)
    Out.push_back(I.Rd);
}

const Instruction &ReachingDefs::inst(size_t Id) const {
  InstRef R = Refs[Id];
  return F->Blocks[R.Block].Insts[R.Index];
}

ReachingDefs::ReachingDefs(const Function &F, const Cfg &G) : F(&F) {
  // Number instructions.
  BlockBase.resize(F.Blocks.size());
  size_t N = 0;
  for (size_t BB = 0; BB < F.Blocks.size(); ++BB) {
    BlockBase[BB] = N;
    N += F.Blocks[BB].Insts.size();
  }
  Refs.resize(N);
  for (size_t BB = 0; BB < F.Blocks.size(); ++BB)
    for (size_t II = 0; II < F.Blocks[BB].Insts.size(); ++II)
      Refs[BlockBase[BB] + II] = {static_cast<int32_t>(BB),
                                  static_cast<int32_t>(II)};

  // Collect definition sites.
  DefIdsOfInst.resize(N);
  DefsOfReg.resize(NumRegs);
  std::vector<Reg> Regs;
  for (size_t Id = 0; Id < N; ++Id) {
    const Instruction &I = inst(Id);
    collectRegDefs(I, Regs);
    for (Reg R : Regs) {
      size_t DefId = DefSites.size();
      DefSites.push_back({Id, R, I.isCall()});
      DefIdsOfInst[Id].push_back(DefId);
      DefsOfReg[R].push_back(DefId);
    }
  }
  EntryDefBase = DefSites.size();
  for (Reg R = 0; R < NumRegs; ++R)
    DefsOfReg[R].push_back(EntryDefBase + R);

  size_t Words = (numDefIds() + 63) / 64;

  // Per-block gen/kill.
  size_t NumBlocks = F.Blocks.size();
  std::vector<Bits> Gen(NumBlocks, Bits(Words, 0));
  std::vector<Bits> Kill(NumBlocks, Bits(Words, 0));
  for (size_t BB = 0; BB < NumBlocks; ++BB) {
    // Walk forward; later defs of the same register supersede earlier ones.
    for (size_t II = 0; II < F.Blocks[BB].Insts.size(); ++II) {
      size_t Id = BlockBase[BB] + II;
      for (size_t DefId : DefIdsOfInst[Id]) {
        Reg R = DefSites[DefId].R;
        for (size_t Other : DefsOfReg[R]) {
          setBit(Kill[BB], Other);
          Gen[BB][Other / 64] &= ~(uint64_t(1) << (Other % 64));
        }
        setBit(Gen[BB], DefId);
      }
    }
  }

  // Iterate to fixpoint over the reachable blocks in RPO.
  BlockIn.assign(NumBlocks, Bits(Words, 0));
  std::vector<Bits> BlockOut(NumBlocks, Bits(Words, 0));
  // Entry block starts with all entry defs.
  Bits EntryBits(Words, 0);
  for (Reg R = 0; R < NumRegs; ++R)
    setBit(EntryBits, EntryDefBase + R);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int32_t BB : G.rpo()) {
      Bits In(Words, 0);
      if (BB == F.EntryBlock)
        In = EntryBits;
      for (int32_t P : G.predecessors(BB))
        for (size_t W = 0; W < Words; ++W)
          In[W] |= BlockOut[P][W];
      Bits Out = In;
      for (size_t W = 0; W < Words; ++W)
        Out[W] = Gen[BB][W] | (In[W] & ~Kill[BB][W]);
      if (In != BlockIn[BB] || Out != BlockOut[BB]) {
        BlockIn[BB] = std::move(In);
        BlockOut[BB] = std::move(Out);
        Changed = true;
      }
    }
  }

  // Def->use chains: for every instruction source, attribute the use to
  // each reaching InstDef.
  UsesOf.assign(N, {});
  std::vector<Def> Defs;
  for (size_t Id = 0; Id < N; ++Id) {
    const Instruction &I = inst(Id);
    unsigned NSrc = I.numRegSources();
    for (unsigned S = 0; S < NSrc; ++S) {
      Reg R = I.regSource(S);
      if (R == RegZero)
        continue;
      InstRef Ref = Refs[Id];
      reachingDefs(Ref.Block, Ref.Index, R, Defs);
      for (const Def &D : Defs) {
        if (D.Kind != Def::InstDef)
          continue;
        auto &Uses = UsesOf[D.InstId];
        if (std::find(Uses.begin(), Uses.end(), Id) == Uses.end())
          Uses.push_back(Id);
      }
    }
  }
}

void ReachingDefs::reachingDefs(int32_t Block, int32_t Index, Reg R,
                                std::vector<Def> &Out) const {
  Out.clear();
  if (R == RegZero)
    return;
  // Local walk backwards first: the nearest in-block def wins outright.
  const BasicBlock &BB = F->Blocks[Block];
  std::vector<Reg> Regs;
  for (int32_t II = Index - 1; II >= 0; --II) {
    const Instruction &I = BB.Insts[II];
    collectRegDefs(I, Regs);
    if (std::find(Regs.begin(), Regs.end(), R) == Regs.end())
      continue;
    size_t Id = BlockBase[Block] + static_cast<size_t>(II);
    Out.push_back({I.isCall() ? Def::CallClobber : Def::InstDef, Id, R});
    return;
  }
  // Otherwise every def of R reaching the block entry applies.
  const Bits &In = BlockIn[Block];
  for (size_t DefId : DefsOfReg[R]) {
    if (!testBit(In, DefId))
      continue;
    if (DefId >= EntryDefBase) {
      Out.push_back({Def::EntryDef, SIZE_MAX, R});
    } else {
      const DefSite &DS = DefSites[DefId];
      Out.push_back({DS.IsCallClobber ? Def::CallClobber : Def::InstDef,
                     DS.InstId, R});
    }
  }
}

size_t ReachingDefs::uniqueReachingInstDef(int32_t Block, int32_t Index,
                                           Reg R) const {
  std::vector<Def> Defs;
  reachingDefs(Block, Index, R, Defs);
  if (Defs.size() != 1 || Defs[0].Kind != Def::InstDef)
    return SIZE_MAX;
  return Defs[0].InstId;
}
