//===- analysis/Dominators.cpp --------------------------------------------==//

#include "analysis/Dominators.h"

#include <cassert>

using namespace og;

DominatorTree::DominatorTree(const Cfg &G) : G(&G) {
  size_t N = G.numBlocks();
  Idom.assign(N, NoTarget);
  if (G.rpo().empty())
    return;
  int32_t Entry = G.rpo().front();
  Idom[Entry] = Entry;

  auto intersect = [&](int32_t A, int32_t B) {
    while (A != B) {
      while (G.rpoIndex(A) > G.rpoIndex(B))
        A = Idom[A];
      while (G.rpoIndex(B) > G.rpoIndex(A))
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int32_t BB : G.rpo()) {
      if (BB == Entry)
        continue;
      int32_t NewIdom = NoTarget;
      for (int32_t P : G.predecessors(BB)) {
        if (Idom[P] == NoTarget)
          continue; // unprocessed or unreachable
        NewIdom = NewIdom == NoTarget ? P : intersect(P, NewIdom);
      }
      assert(NewIdom != NoTarget && "reachable block with no processed pred");
      if (Idom[BB] != NewIdom) {
        Idom[BB] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(int32_t A, int32_t B) const {
  if (Idom[A] == NoTarget || Idom[B] == NoTarget)
    return false;
  int32_t Entry = G->rpo().front();
  int32_t Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    if (Cur == Entry)
      return false;
    Cur = Idom[Cur];
  }
}

std::vector<int32_t> DominatorTree::dominated(int32_t BB) const {
  std::vector<int32_t> Out;
  for (size_t I = 0; I < Idom.size(); ++I)
    if (dominates(BB, static_cast<int32_t>(I)))
      Out.push_back(static_cast<int32_t>(I));
  return Out;
}
