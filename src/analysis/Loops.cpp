//===- analysis/Loops.cpp -------------------------------------------------==//

#include "analysis/Loops.h"

#include "support/MathExtras.h"

#include <algorithm>
#include <cassert>

using namespace og;

bool Loop::contains(int32_t BB) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), BB);
}

LoopInfo::LoopInfo(const Cfg &G, const DominatorTree &DT) {
  const Function &F = G.function();

  // Find back edges (T -> H where H dominates T) grouped by header.
  for (int32_t H : G.rpo()) {
    std::vector<int32_t> Latches;
    for (int32_t P : G.predecessors(H))
      if (G.isReachable(P) && DT.dominates(H, P))
        Latches.push_back(P);
    if (Latches.empty())
      continue;

    // Natural loop body: blocks that reach a latch without passing H.
    std::vector<uint8_t> InLoop(G.numBlocks(), 0);
    InLoop[H] = 1;
    std::vector<int32_t> Work = Latches;
    for (int32_t L : Latches)
      InLoop[L] = 1;
    while (!Work.empty()) {
      int32_t BB = Work.back();
      Work.pop_back();
      if (BB == H)
        continue;
      for (int32_t P : G.predecessors(BB)) {
        if (!G.isReachable(P) || InLoop[P])
          continue;
        InLoop[P] = 1;
        Work.push_back(P);
      }
    }

    Loop L;
    L.Header = H;
    L.Latches = Latches;
    for (size_t BB = 0; BB < G.numBlocks(); ++BB)
      if (InLoop[BB])
        L.Blocks.push_back(static_cast<int32_t>(BB));
    std::sort(L.Latches.begin(), L.Latches.end());
    detectIterator(F, G, L);
    // Iterator legality also needs dominance of the increment over all
    // latches (must run exactly once per iteration); check here where DT is
    // in scope.
    if (L.Iterator) {
      for (int32_t Latch : L.Latches)
        if (!DT.dominates(L.Iterator->IncBlock, Latch)) {
          L.Iterator.reset();
          break;
        }
    }
    Loops.push_back(std::move(L));
  }
}

const Loop *LoopInfo::innermostLoop(int32_t BB) const {
  const Loop *Best = nullptr;
  for (const Loop &L : Loops)
    if (L.contains(BB) && (!Best || L.Blocks.size() < Best->Blocks.size()))
      Best = &L;
  return Best;
}

const Loop *LoopInfo::loopWithHeader(int32_t Header) const {
  for (const Loop &L : Loops)
    if (L.Header == Header)
      return &L;
  return nullptr;
}

namespace {

/// Maps a conditional branch on a register directly (Alpha-style test
/// against zero) to an equivalent compare op and bound.
bool branchAsCompare(Op BranchOp, Op &CmpOp, int64_t &Bound,
                     bool &TrueWhenTaken) {
  switch (BranchOp) {
  case Op::Beq: // x == 0
    CmpOp = Op::CmpEq;
    Bound = 0;
    TrueWhenTaken = true;
    return true;
  case Op::Bne: // x != 0 == !(x == 0)
    CmpOp = Op::CmpEq;
    Bound = 0;
    TrueWhenTaken = false;
    return true;
  case Op::Blt: // x < 0
    CmpOp = Op::CmpLt;
    Bound = 0;
    TrueWhenTaken = true;
    return true;
  case Op::Ble:
    CmpOp = Op::CmpLe;
    Bound = 0;
    TrueWhenTaken = true;
    return true;
  case Op::Bgt: // x > 0 == !(x <= 0)
    CmpOp = Op::CmpLe;
    Bound = 0;
    TrueWhenTaken = false;
    return true;
  case Op::Bge: // x >= 0 == !(x < 0)
    CmpOp = Op::CmpLt;
    Bound = 0;
    TrueWhenTaken = false;
    return true;
  default:
    return false;
  }
}

} // namespace

void LoopInfo::detectIterator(const Function &F, const Cfg &G, Loop &L) {
  // 1. Find registers with exactly one in-loop definition of the form
  //    x = x + #c. Calls inside the loop clobber caller-saved registers, so
  //    an iterator in a caller-saved register is rejected when the loop
  //    calls out.
  bool LoopHasCall = false;
  // DefCount[r]: number of in-loop defs; IncSite[r]: the increment if the
  // def looks like one.
  int DefCount[NumRegs] = {};
  std::pair<int32_t, size_t> IncSite[NumRegs];
  int64_t Steps[NumRegs] = {};
  for (int32_t BB : L.Blocks) {
    const BasicBlock &Block = F.Blocks[BB];
    for (size_t II = 0; II < Block.Insts.size(); ++II) {
      const Instruction &I = Block.Insts[II];
      if (I.isCall())
        LoopHasCall = true;
      if (!I.hasDest() || I.Rd == RegZero)
        continue;
      ++DefCount[I.Rd];
      bool IsInc = (I.Opc == Op::Add || I.Opc == Op::Sub) && I.UseImm &&
                   I.Ra == I.Rd && I.Imm != 0;
      if (IsInc) {
        IncSite[I.Rd] = {BB, II};
        Steps[I.Rd] = I.Opc == Op::Add ? I.Imm : -I.Imm;
      } else {
        // Poison: not a pure increment.
        DefCount[I.Rd] += 100;
      }
    }
  }

  // 2. Find an exit test: a conditional branch in the loop with one
  //    successor outside, whose condition constrains a candidate iterator
  //    against a constant. Prefer the header's branch (for-loop shape).
  std::vector<int32_t> TestOrder;
  TestOrder.push_back(L.Header);
  for (int32_t BB : L.Blocks)
    if (BB != L.Header)
      TestOrder.push_back(BB);

  for (int32_t BB : TestOrder) {
    const BasicBlock &Block = F.Blocks[BB];
    const Instruction *Term = Block.terminator();
    if (!Term || !Term->isCondBranch())
      continue;
    bool TakenIn = L.contains(Term->Target);
    bool FallIn = L.contains(Block.FallthroughSucc);
    if (TakenIn == FallIn)
      continue; // not an exit test

    // Identify the compare: either the branch itself (vs zero) on the
    // iterator, or a branch on a compare result defined in this block.
    Reg X = NumRegs;
    Op CmpOp;
    int64_t Bound;
    bool TrueWhenTaken;
    if (branchAsCompare(Term->Opc, CmpOp, Bound, TrueWhenTaken) &&
        DefCount[Term->Ra] == 1 && Steps[Term->Ra] != 0) {
      X = Term->Ra;
    }
    if (X == NumRegs) {
      // Search backwards in this block for "cmp* rc, x, #N" defining the
      // branch condition register.
      for (size_t II = Block.Insts.size(); II-- > 0;) {
        const Instruction &I = Block.Insts[II];
        if (!I.hasDest() || I.Rd != Term->Ra)
          continue;
        if (isCompare(I.Opc) && I.UseImm && DefCount[I.Ra] == 1 &&
            Steps[I.Ra] != 0) {
          X = I.Ra;
          CmpOp = I.Opc;
          Bound = I.Imm;
          // Branch tests rc vs zero: bne taken iff compare true.
          if (Term->Opc == Op::Bne)
            TrueWhenTaken = true;
          else if (Term->Opc == Op::Beq)
            TrueWhenTaken = false;
          else
            X = NumRegs; // odd branch on a 0/1 value; be conservative
        }
        break; // nearest def wins; anything else is too clever
      }
    }
    if (X == NumRegs)
      continue;
    if (LoopHasCall && isCallerSaved(X))
      continue;

    AffineIterator It;
    It.X = X;
    It.Step = Steps[X];
    It.CmpOp = CmpOp;
    It.Bound = Bound;
    // Loop continues along the in-loop edge.
    It.ContinueWhenTrue = TakenIn ? TrueWhenTaken : !TrueWhenTaken;
    It.IncBlock = IncSite[X].first;
    It.IncIndex = IncSite[X].second;
    L.Iterator = It;
    return;
  }
  (void)G;
}

bool og::computeIteratorBounds(const AffineIterator &It, int64_t Init,
                               IteratorBounds &Out) {
  int64_t C = It.Step;
  int64_t N = It.Bound;
  assert(C != 0 && "affine iterator with zero step");

  // Normalize to a continue-condition over signed arithmetic.
  enum class Cond { LT, LE, GT, GE, EQ, NE };
  Cond CC;
  switch (It.CmpOp) {
  case Op::CmpLt:
    CC = It.ContinueWhenTrue ? Cond::LT : Cond::GE;
    break;
  case Op::CmpLe:
    CC = It.ContinueWhenTrue ? Cond::LE : Cond::GT;
    break;
  case Op::CmpEq:
    CC = It.ContinueWhenTrue ? Cond::EQ : Cond::NE;
    break;
  case Op::CmpUlt:
  case Op::CmpUle:
    // Unsigned tests agree with signed ones only in the nonnegative
    // quadrant.
    if (Init < 0 || N < 0)
      return false;
    CC = It.CmpOp == Op::CmpUlt
             ? (It.ContinueWhenTrue ? Cond::LT : Cond::GE)
             : (It.ContinueWhenTrue ? Cond::LE : Cond::GT);
    break;
  default:
    return false;
  }

  auto ceilDiv = [](int64_t A, int64_t B) {
    assert(B > 0);
    return A <= 0 ? 0 : (A + B - 1) / B;
  };

  // Handle EQ/NE first, they do not depend on the sign of C the same way.
  if (CC == Cond::EQ) {
    // Continue while x == N: at most one iteration.
    if (Init != N) {
      Out = {Init, Init, Init, Init, 0};
      return true;
    }
    int64_t NextVal = saturatingAdd(Init, C);
    Out.HeaderMin = std::min(Init, NextVal);
    Out.HeaderMax = std::max(Init, NextVal);
    Out.BodyMin = Out.BodyMax = Init;
    Out.TripCount = 1;
    return true;
  }
  if (CC == Cond::NE) {
    // Continue while x != N: terminates only when stepping from Init lands
    // exactly on N.
    int64_t Diff = saturatingSub(N, Init);
    if (C > 0 ? (Diff < 0 || Diff % C != 0) : (Diff > 0 || Diff % C != 0))
      return false;
    Out.HeaderMin = std::min(Init, N);
    Out.HeaderMax = std::max(Init, N);
    // Body executes for every value except the final N.
    Out.BodyMin = C > 0 ? Init : saturatingAdd(N, -C);
    Out.BodyMax = C > 0 ? saturatingSub(N, C) : Init;
    if (Out.BodyMin > Out.BodyMax) {
      Out.BodyMin = Out.BodyMax = Init;
    }
    Out.TripCount = static_cast<uint64_t>(Diff / C);
    return true;
  }

  if (C > 0) {
    // Upward loops need an upper-bounding condition.
    if (CC == Cond::GT || CC == Cond::GE) {
      // Continue while x > N going up: never terminates once entered.
      bool Entered = CC == Cond::GT ? Init > N : Init >= N;
      if (Entered)
        return false;
      Out = {Init, Init, Init, Init, 0};
      return true;
    }
    int64_t Limit = CC == Cond::LT ? N : saturatingAdd(N, 1); // exclusive
    if (Init >= Limit) {
      Out = {Init, Init, Init, Init, 0};
      return true;
    }
    Out.BodyMin = Init;
    Out.BodyMax = saturatingSub(Limit, 1);
    Out.HeaderMin = Init;
    // Final header value: first value >= Limit, at most Limit + C - 1.
    Out.HeaderMax = saturatingAdd(Limit, C - 1);
    Out.TripCount =
        static_cast<uint64_t>(ceilDiv(saturatingSub(Limit, Init), C));
    return true;
  }

  // C < 0: mirrored.
  if (CC == Cond::LT || CC == Cond::LE) {
    bool Entered = CC == Cond::LT ? Init < N : Init <= N;
    if (Entered)
      return false;
    Out = {Init, Init, Init, Init, 0};
    return true;
  }
  int64_t Limit = CC == Cond::GT ? N : saturatingSub(N, 1); // exclusive low
  if (Init <= Limit) {
    Out = {Init, Init, Init, Init, 0};
    return true;
  }
  Out.BodyMax = Init;
  Out.BodyMin = saturatingAdd(Limit, 1);
  Out.HeaderMax = Init;
  Out.HeaderMin = saturatingAdd(Limit, C + 1);
  Out.TripCount = static_cast<uint64_t>(
      ceilDiv(saturatingSub(Init, Limit), -C));
  return true;
}
