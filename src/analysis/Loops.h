//===- analysis/Loops.h - Natural loops and affine iterators -----*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection plus the loop-shape analysis of paper Section
/// 2.3: loops whose single iterator evolves as x = x + b with a constant
/// step, bounded by a compare against a constant. For such loops VRP can
/// bound the iterator (and hence everything derived from it) instead of
/// widening to the full integer range; "some loops that are not included
/// are those having more than one iterator and loops that depend on a
/// comparison to finish" — those fall back to the conservative worst case.
///
//===----------------------------------------------------------------------===//

#ifndef OG_ANALYSIS_LOOPS_H
#define OG_ANALYSIS_LOOPS_H

#include "analysis/Dominators.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace og {

/// Shape of a recognized single-iterator affine loop.
struct AffineIterator {
  Reg X = RegZero;       ///< the iterator register
  int64_t Step = 0;      ///< b in x = x + b (non-zero)
  Op CmpOp = Op::CmpLt;  ///< compare applied as "x CmpOp Bound"
  int64_t Bound = 0;     ///< constant loop bound
  bool ContinueWhenTrue = true; ///< loop continues while the compare holds
  int32_t IncBlock = 0;  ///< block holding the unique increment
  size_t IncIndex = 0;   ///< instruction index of the increment
};

/// One natural loop.
struct Loop {
  int32_t Header = 0;
  std::vector<int32_t> Blocks;  ///< sorted block ids, header included
  std::vector<int32_t> Latches; ///< blocks with a back edge to the header
  std::optional<AffineIterator> Iterator; ///< set when the shape matched

  bool contains(int32_t BB) const;
};

/// All natural loops of a function (loops sharing a header are merged).
class LoopInfo {
public:
  LoopInfo(const Cfg &G, const DominatorTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

  /// Innermost loop containing \p BB, or nullptr.
  const Loop *innermostLoop(int32_t BB) const;

  /// Loop headed exactly at \p Header, or nullptr.
  const Loop *loopWithHeader(int32_t Header) const;

private:
  void detectIterator(const Function &F, const Cfg &G, Loop &L);

  std::vector<Loop> Loops;
};

/// Given the constant initial value \p Init of a recognized iterator, the
/// iterator's value range as observed at the loop header (including the
/// final value that fails the test) and the trip count. Returns false when
/// the shape cannot terminate or overflows (caller must widen).
struct IteratorBounds {
  int64_t HeaderMin = 0; ///< iterator range at loop header
  int64_t HeaderMax = 0;
  int64_t BodyMin = 0;   ///< iterator range when the body executes
  int64_t BodyMax = 0;
  uint64_t TripCount = 0;
};
bool computeIteratorBounds(const AffineIterator &It, int64_t Init,
                           IteratorBounds &Out);

} // namespace og

#endif // OG_ANALYSIS_LOOPS_H
