//===- analysis/Liveness.cpp ----------------------------------------------==//

#include "analysis/Liveness.h"

using namespace og;

uint32_t Liveness::usedRegs(const Instruction &I) {
  uint32_t Mask = 0;
  unsigned NSrc = I.numRegSources();
  for (unsigned S = 0; S < NSrc; ++S) {
    Reg R = I.regSource(S);
    if (R != RegZero)
      Mask |= uint32_t(1) << R;
  }
  if (I.isCall()) {
    for (Reg R = RegA0; R < RegA0 + NumArgRegs; ++R)
      Mask |= uint32_t(1) << R;
    Mask |= uint32_t(1) << RegSP;
  }
  if (I.Opc == Op::Ret) {
    Mask |= uint32_t(1) << RegV0;
    for (Reg R = 0; R < NumRegs; ++R)
      if (isCalleeSaved(R))
        Mask |= uint32_t(1) << R;
  }
  return Mask;
}

uint32_t Liveness::definedRegs(const Instruction &I) {
  uint32_t Mask = 0;
  if (I.isCall()) {
    for (Reg R = 0; R < NumRegs; ++R)
      if (isCallerSaved(R))
        Mask |= uint32_t(1) << R;
    return Mask;
  }
  if (I.hasDest() && I.Rd != RegZero)
    Mask |= uint32_t(1) << I.Rd;
  return Mask;
}

Liveness::Liveness(const Function &F, const Cfg &G) : F(&F) {
  size_t N = F.Blocks.size();
  In.assign(N, 0);
  Out.assign(N, 0);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Postorder = reverse of RPO is the natural direction for backward
    // problems; iterating RPO backwards is equivalent here.
    for (size_t RI = G.rpo().size(); RI-- > 0;) {
      int32_t BB = G.rpo()[RI];
      uint32_t NewOut = 0;
      for (int32_t S : G.successors(BB))
        NewOut |= In[S];
      uint32_t Live = NewOut;
      const BasicBlock &Block = F.Blocks[BB];
      for (size_t II = Block.Insts.size(); II-- > 0;) {
        const Instruction &I = Block.Insts[II];
        Live &= ~definedRegs(I);
        Live |= usedRegs(I);
      }
      if (NewOut != Out[BB] || Live != In[BB]) {
        Out[BB] = NewOut;
        In[BB] = Live;
        Changed = true;
      }
    }
  }
}

bool Liveness::liveAfter(int32_t BB, int32_t Index, Reg R) const {
  if (R == RegZero)
    return false;
  uint32_t Live = Out[BB];
  const BasicBlock &Block = F->Blocks[BB];
  for (size_t II = Block.Insts.size(); II-- > static_cast<size_t>(Index + 1);) {
    const Instruction &I = Block.Insts[II];
    Live &= ~definedRegs(I);
    Live |= usedRegs(I);
  }
  return Live & (uint32_t(1) << R);
}
