//===- analysis/Liveness.h - Register liveness -------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward register liveness, used by the dead-code elimination that runs
/// inside single-value specialized regions (paper Figure 5: "percentage
/// eliminated"). Call effects are conservative: calls read the argument
/// registers, define the caller-saved set; returns read the result and
/// callee-saved registers.
///
//===----------------------------------------------------------------------===//

#ifndef OG_ANALYSIS_LIVENESS_H
#define OG_ANALYSIS_LIVENESS_H

#include "analysis/Cfg.h"

#include <cstdint>

namespace og {

/// Per-block live-in/live-out register masks (bit r = register r).
class Liveness {
public:
  Liveness(const Function &F, const Cfg &G);

  uint32_t liveIn(int32_t BB) const { return In[BB]; }
  uint32_t liveOut(int32_t BB) const { return Out[BB]; }

  /// True when \p R is live immediately after instruction \p Index of
  /// \p BB (i.e. its value may still be read).
  bool liveAfter(int32_t BB, int32_t Index, Reg R) const;

  /// Registers read by \p I under the conservative call model.
  static uint32_t usedRegs(const Instruction &I);
  /// Registers written by \p I under the conservative call model.
  static uint32_t definedRegs(const Instruction &I);

private:
  const Function *F;
  std::vector<uint32_t> In;
  std::vector<uint32_t> Out;
};

} // namespace og

#endif // OG_ANALYSIS_LIVENESS_H
