//===- analysis/CallGraph.h - Direct-call graph ------------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program's direct call graph; drives the interprocedural phase of VRP
/// (paper Section 2.4: argument registers carry ranges into callees, return
/// registers carry ranges back).
///
//===----------------------------------------------------------------------===//

#ifndef OG_ANALYSIS_CALLGRAPH_H
#define OG_ANALYSIS_CALLGRAPH_H

#include "program/Program.h"

#include <cstdint>
#include <vector>

namespace og {

/// Call graph over function ids.
class CallGraph {
public:
  explicit CallGraph(const Program &P);

  struct CallSite {
    int32_t Caller;
    int32_t Block;
    int32_t Index;
    int32_t Callee;
  };

  const std::vector<int32_t> &callees(int32_t F) const { return Callees[F]; }
  const std::vector<int32_t> &callers(int32_t F) const { return Callers[F]; }
  const std::vector<CallSite> &callSites() const { return Sites; }

  /// Call sites whose callee is \p F.
  std::vector<CallSite> callSitesOf(int32_t F) const;

  /// Functions in bottom-up order (callees before callers where the graph
  /// is acyclic; recursion cycles appear in DFS finish order).
  const std::vector<int32_t> &bottomUpOrder() const { return BottomUp; }

private:
  std::vector<std::vector<int32_t>> Callees;
  std::vector<std::vector<int32_t>> Callers;
  std::vector<CallSite> Sites;
  std::vector<int32_t> BottomUp;
};

} // namespace og

#endif // OG_ANALYSIS_CALLGRAPH_H
