//===- analysis/CallGraph.cpp ---------------------------------------------==//

#include "analysis/CallGraph.h"

#include <algorithm>

using namespace og;

CallGraph::CallGraph(const Program &P) {
  size_t N = P.Funcs.size();
  Callees.resize(N);
  Callers.resize(N);

  for (const Function &F : P.Funcs) {
    for (const BasicBlock &BB : F.Blocks) {
      for (size_t II = 0; II < BB.Insts.size(); ++II) {
        const Instruction &I = BB.Insts[II];
        if (!I.isCall())
          continue;
        Sites.push_back({F.Id, BB.Id, static_cast<int32_t>(II), I.Callee});
        if (std::find(Callees[F.Id].begin(), Callees[F.Id].end(),
                      I.Callee) == Callees[F.Id].end())
          Callees[F.Id].push_back(I.Callee);
        if (std::find(Callers[I.Callee].begin(), Callers[I.Callee].end(),
                      F.Id) == Callers[I.Callee].end())
          Callers[I.Callee].push_back(F.Id);
      }
    }
  }

  // DFS finish order from the entry gives a bottom-up ordering when the
  // graph is acyclic; unreachable functions are appended afterwards.
  std::vector<uint8_t> State(N, 0);
  std::vector<std::pair<int32_t, size_t>> Stack;
  auto dfsFrom = [&](int32_t Root) {
    if (State[Root])
      return;
    State[Root] = 1;
    Stack.emplace_back(Root, 0);
    while (!Stack.empty()) {
      auto &[F, Next] = Stack.back();
      if (Next < Callees[F].size()) {
        int32_t C = Callees[F][Next++];
        if (!State[C]) {
          State[C] = 1;
          Stack.emplace_back(C, 0);
        }
      } else {
        BottomUp.push_back(F);
        Stack.pop_back();
      }
    }
  };
  dfsFrom(P.EntryFunc);
  for (size_t F = 0; F < N; ++F)
    dfsFrom(static_cast<int32_t>(F));
}

std::vector<CallGraph::CallSite> CallGraph::callSitesOf(int32_t F) const {
  std::vector<CallSite> Out;
  for (const CallSite &S : Sites)
    if (S.Callee == F)
      Out.push_back(S);
  return Out;
}
