//===- analysis/ReachingDefs.h - Def-use information -------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register reaching definitions and def-use chains for one function.
/// This is the "use-def algorithm expanded to allow for inter-basic-block
/// ... traversals" the paper describes adding to Alto (Section 4.1): the
/// useful-width demand analysis walks def->use edges, VRS's Savings
/// recursion walks use chains, and branch refinement asks for unique
/// reaching definitions.
///
/// Calls are modeled as definitions of every caller-saved register (the
/// callee may clobber them); function entry defines every register.
///
//===----------------------------------------------------------------------===//

#ifndef OG_ANALYSIS_REACHINGDEFS_H
#define OG_ANALYSIS_REACHINGDEFS_H

#include "analysis/Cfg.h"

#include <cstdint>
#include <vector>

namespace og {

/// A function-local instruction handle.
struct InstRef {
  int32_t Block = NoTarget;
  int32_t Index = 0;

  bool operator==(const InstRef &O) const {
    return Block == O.Block && Index == O.Index;
  }
};

/// Reaching definitions over a function snapshot.
class ReachingDefs {
public:
  ReachingDefs(const Function &F, const Cfg &G);

  /// Dense instruction numbering (layout order).
  size_t numInsts() const { return Refs.size(); }
  size_t instId(int32_t Block, int32_t Index) const {
    return BlockBase[Block] + static_cast<size_t>(Index);
  }
  InstRef instRef(size_t Id) const { return Refs[Id]; }
  const Instruction &inst(size_t Id) const;

  /// One definition that may reach a use.
  struct Def {
    enum KindTy : uint8_t {
      InstDef,     ///< a normal instruction writing R (InstId valid)
      CallClobber, ///< a call clobbering caller-saved R (InstId = the call)
      EntryDef,    ///< function entry (parameter or stale value)
    } Kind;
    size_t InstId; ///< valid for InstDef/CallClobber
    Reg R;
  };

  /// All definitions of \p R that can reach the input of instruction
  /// (\p Block, \p Index). Deterministic order.
  void reachingDefs(int32_t Block, int32_t Index, Reg R,
                    std::vector<Def> &Out) const;

  /// If exactly one InstDef of \p R reaches (\p Block, \p Index) and no
  /// entry/call definition does, returns its instruction id; SIZE_MAX
  /// otherwise.
  size_t uniqueReachingInstDef(int32_t Block, int32_t Index, Reg R) const;

  /// Instructions that may read the value defined by instruction \p InstId
  /// (its Rd). Empty for instructions without a register destination and
  /// for calls.
  const std::vector<size_t> &usesOf(size_t InstId) const {
    return UsesOf[InstId];
  }

private:
  const Function *F;

  std::vector<size_t> BlockBase; ///< per-block base instruction id
  std::vector<InstRef> Refs;

  // Definition sites: (instruction, register) pairs plus 32 entry defs at
  // the end of the id space.
  struct DefSite {
    size_t InstId;
    Reg R;
    bool IsCallClobber;
  };
  std::vector<DefSite> DefSites;
  size_t EntryDefBase = 0; ///< entry def of register r = EntryDefBase + r

  size_t numDefIds() const { return EntryDefBase + NumRegs; }

  using Bits = std::vector<uint64_t>;
  std::vector<Bits> BlockIn; ///< reaching def ids at block entry

  std::vector<std::vector<size_t>> UsesOf;

  std::vector<std::vector<size_t>> DefIdsOfInst; ///< inst id -> def ids
  std::vector<std::vector<size_t>> DefsOfReg;    ///< reg -> def ids

  void collectRegDefs(const Instruction &I, std::vector<Reg> &Out) const;
};

} // namespace og

#endif // OG_ANALYSIS_REACHINGDEFS_H
