//===- driver/ResultAggregator.cpp ----------------------------------------==//

#include "driver/ResultAggregator.h"

#include "support/Table.h"

#include <algorithm>
#include <map>
#include <ostream>

using namespace og;

ResultAggregator::Cell
ResultAggregator::makeCell(const ExperimentSpec &Spec,
                           const PipelineResult &Result) {
  Cell C;
  C.Workload = Spec.Workload;
  C.Label = Spec.ConfigLabel;
  C.DynInsts = Result.RefStats.DynInsts;
  C.Cycles = Result.Report.Uarch.Cycles;
  C.Ipc = Result.Report.Uarch.ipc();
  C.Energy = Result.Report.TotalEnergy;
  C.Ed2 = Result.Report.ed2();
  C.Narrowed = Result.Narrowing.NumNarrowed;
  C.WidthBearing = Result.Narrowing.NumWidthBearing;
  C.Opt = Result.OptStats;
  C.Sample = Result.Sample;
  C.Engine = Result.Engine;
  return C;
}

void ResultAggregator::add(const ExperimentSpec &Spec,
                           const PipelineResult &Result) {
  Cells.push_back(makeCell(Spec, Result));
}

void ResultAggregator::add(Cell C) { Cells.push_back(std::move(C)); }

StatisticSet ResultAggregator::stats() const {
  StatisticSet S;
  // Touch every counter up front so the dump order is fixed even when a
  // sum happens to be zero.
  S.add("sweep.cells", 0);
  S.add("sweep.dyn-insts", 0);
  S.add("sweep.cycles", 0);
  S.add("sweep.narrowed-opcodes", 0);
  S.add("sweep.width-bearing-opcodes", 0);
  for (const Cell &C : Cells) {
    S.add("sweep.cells");
    S.add("sweep.dyn-insts", C.DynInsts);
    S.add("sweep.cycles", C.Cycles);
    S.add("sweep.narrowed-opcodes", C.Narrowed);
    S.add("sweep.width-bearing-opcodes", C.WidthBearing);
  }
  return S;
}

std::vector<ResultAggregator::Cell> ResultAggregator::sortedCells() const {
  // stable_sort so duplicate (workload, config) keys — which a correct
  // sweep never produces — at least keep their deterministic insertion
  // order (add() runs serially in spec order) instead of falling into
  // unspecified-order territory.
  std::vector<Cell> Sorted = Cells;
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const Cell &A, const Cell &B) {
                     if (A.Workload != B.Workload)
                       return A.Workload < B.Workload;
                     return A.Label < B.Label;
                   });
  return Sorted;
}

std::string ResultAggregator::duplicateKey() const {
  // Cheap (one sort of the already-small cell vector) and always on:
  // duplicate cells used to be an assert that vanished in Release
  // builds, letting a spec-construction bug produce a silently
  // double-rowed report. Callers surface the key as an error instead.
  const std::vector<Cell> Sorted = sortedCells();
  for (size_t I = 1; I < Sorted.size(); ++I)
    if (Sorted[I - 1].Workload == Sorted[I].Workload &&
        Sorted[I - 1].Label == Sorted[I].Label)
      return Sorted[I].Workload + "/" + Sorted[I].Label;
  return "";
}

void ResultAggregator::print(std::ostream &OS) const {
  std::vector<Cell> Sorted = sortedCells();

  // Savings are computed against each workload's baseline cell.
  std::map<std::string, const Cell *> Baselines;
  for (const Cell &C : Sorted)
    if (C.Label == "baseline")
      Baselines.emplace(C.Workload, &C);

  TextTable T({"workload", "config", "insts", "cycles", "IPC", "energy",
               "ED^2", "dE%", "dED2%"});
  for (const Cell &C : Sorted) {
    auto BaseIt = Baselines.find(C.Workload);
    const Cell *Base = BaseIt == Baselines.end() ? nullptr : BaseIt->second;
    std::string DE = "-", DEd2 = "-";
    if (Base && Base != &C && Base->Energy > 0 && Base->Ed2 > 0) {
      DE = TextTable::num(100.0 * (1.0 - C.Energy / Base->Energy), 1);
      DEd2 = TextTable::num(100.0 * (1.0 - C.Ed2 / Base->Ed2), 1);
    }
    T.addRow({C.Workload, C.Label, std::to_string(C.DynInsts),
              std::to_string(C.Cycles), TextTable::num(C.Ipc, 2),
              TextTable::num(C.Energy, 1), TextTable::num(C.Ed2, 1), DE,
              DEd2});
  }
  T.print(OS);
  OS << "\n";
  stats().print(OS);
}
