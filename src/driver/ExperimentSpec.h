//===- driver/ExperimentSpec.h - One cell of an experiment matrix -*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ExperimentSpec names one cell of the evaluation matrix: a workload,
/// a scale, and a pipeline configuration with a human-readable label. The
/// sweep builders enumerate the paper's standard configuration axis and
/// the full workload x IsaPolicy x width-mechanism matrix in a fixed,
/// deterministic order; the driver shards the resulting vector across
/// worker threads. Every spec carries its own deterministic Rng seed
/// (derived from the spec identity, never from time or thread id) so a
/// randomized job sees the same stream no matter which worker runs it.
///
//===----------------------------------------------------------------------===//

#ifndef OG_DRIVER_EXPERIMENTSPEC_H
#define OG_DRIVER_EXPERIMENTSPEC_H

#include "pipeline/Pipeline.h"

#include <string>
#include <vector>

namespace og {

/// One (workload, configuration) cell of an experiment sweep.
struct ExperimentSpec {
  std::string Workload;    ///< registry name ("compress", ...)
  double Scale = 0.25;     ///< ref-input scale (1.0 = paper-sized)
  std::string ConfigLabel; ///< short label ("vrp", "hw-sig", ...)
  PipelineConfig Config;
  /// Deterministic per-job Rng seed; 0 means "derive from identity"
  /// (see specSeed).
  uint64_t Seed = 0;

  /// "workload/label", the name used in reports and error messages.
  std::string name() const { return Workload + "/" + ConfigLabel; }
};

/// Deterministic seed derived from the spec's identity (FNV-1a over
/// name() and the scale). Independent of sweep order, thread assignment,
/// and time, so per-job random streams are reproducible.
uint64_t specSeed(const ExperimentSpec &Spec);

/// Effective seed for a job: Spec.Seed when set, specSeed otherwise.
inline uint64_t effectiveSeed(const ExperimentSpec &Spec) {
  return Spec.Seed ? Spec.Seed : specSeed(Spec);
}

/// The paper's standard configuration axis (the same cells BenchCommon's
/// Harness names): baseline, conventional VRP, VRP, VRS at 50nJ, the two
/// hardware schemes, and the SW+HW combination.
std::vector<ExperimentSpec> standardConfigs();

/// standardConfigs() crossed with every workload in the registry, in the
/// paper's workload order. \p Scale multiplies the ref inputs.
std::vector<ExperimentSpec> makeStandardSweep(double Scale);

/// standardConfigs() crossed with a workload subset, in the given order.
std::vector<ExperimentSpec>
makeStandardSweep(const std::vector<std::string> &Workloads, double Scale);

/// The full matrix of \p Workloads x IsaPolicy x width mechanism:
/// software modes (conventional VRP / VRP / VRS) run under both the
/// Extended and BaseAlpha ISA policies, the baseline and the pure
/// hardware mechanisms (significance / size tags) once each (the ISA
/// policy only affects software narrowing). Deterministic order:
/// workloads outer, mechanisms inner.
std::vector<ExperimentSpec>
makeMatrixSweep(const std::vector<std::string> &Workloads, double Scale);

/// The eight SpecInt95 stand-in names in the paper's order.
std::vector<std::string> allWorkloadNames();

} // namespace og

#endif // OG_DRIVER_EXPERIMENTSPEC_H
