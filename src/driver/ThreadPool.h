//===- driver/ThreadPool.h - Worker threads for the driver -------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size pool of worker threads with a FIFO task queue and a
/// wait() barrier. The experiment driver submits one worker loop per
/// thread (each pulling indices from a JobQueue); the pool itself is
/// generic so later subsystems (batching, async report generation) can
/// reuse it. With one thread requested the pool runs tasks inline on the
/// submitting thread — the serial path has no threading at all, which is
/// what makes --jobs 1 a true serial baseline.
///
//===----------------------------------------------------------------------===//

#ifndef OG_DRIVER_THREADPOOL_H
#define OG_DRIVER_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace og {

/// Fixed-size FIFO thread pool.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 or 1 means "inline" (tasks run on
  /// the thread that calls submit()).
  explicit ThreadPool(unsigned NumThreads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task; runs it immediately when the pool is inline.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void wait();

  /// Number of worker threads (0 when inline).
  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// A sensible default worker count: hardware_concurrency, at least 1.
  static unsigned defaultJobs();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskReady; ///< signalled on submit/stop
  std::condition_variable Idle;      ///< signalled when work drains
  size_t Active = 0;                 ///< tasks currently executing
  bool Stopping = false;
};

} // namespace og

#endif // OG_DRIVER_THREADPOOL_H
