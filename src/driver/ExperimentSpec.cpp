//===- driver/ExperimentSpec.cpp ------------------------------------------==//

#include "driver/ExperimentSpec.h"

using namespace og;

uint64_t og::specSeed(const ExperimentSpec &Spec) {
  // FNV-1a over the spec name and the scale's bit pattern.
  uint64_t H = 0xCBF29CE484222325ull;
  auto Mix = [&H](const void *Data, size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Len; ++I) {
      H ^= P[I];
      H *= 0x100000001B3ull;
    }
  };
  std::string Name = Spec.name();
  Mix(Name.data(), Name.size());
  Mix(&Spec.Scale, sizeof(Spec.Scale));
  // Seed 0 means "derive me", so never return it.
  return H ? H : 1;
}

namespace {

ExperimentSpec makeConfig(const char *Label, SoftwareMode Sw,
                          GatingScheme Scheme, IsaPolicy Policy,
                          double VrsCostNJ = 50.0) {
  ExperimentSpec S;
  S.ConfigLabel = Label;
  S.Config.Sw = Sw;
  S.Config.Scheme = Scheme;
  S.Config.Narrow.Policy = Policy;
  S.Config.VrsTestCostNJ = VrsCostNJ;
  return S;
}

} // namespace

std::vector<ExperimentSpec> og::standardConfigs() {
  std::vector<ExperimentSpec> C;
  C.push_back(makeConfig("baseline", SoftwareMode::None, GatingScheme::None,
                         IsaPolicy::Extended));
  C.push_back(makeConfig("conv-vrp", SoftwareMode::ConventionalVrp,
                         GatingScheme::Software, IsaPolicy::Extended));
  C.push_back(makeConfig("vrp", SoftwareMode::Vrp, GatingScheme::Software,
                         IsaPolicy::Extended));
  C.push_back(makeConfig("vrs-50", SoftwareMode::Vrs, GatingScheme::Software,
                         IsaPolicy::Extended));
  C.push_back(makeConfig("hw-sig", SoftwareMode::None,
                         GatingScheme::HwSignificance, IsaPolicy::Extended));
  C.push_back(makeConfig("hw-size", SoftwareMode::None, GatingScheme::HwSize,
                         IsaPolicy::Extended));
  // Label built the same way Harness::combined builds its cache key, so
  // prefetchStandard() warms the cell the benches actually read.
  ExperimentSpec Comb = makeConfig("", SoftwareMode::Vrp,
                                   GatingScheme::Combined,
                                   IsaPolicy::Extended);
  Comb.ConfigLabel = std::string("comb-") +
                     softwareModeName(SoftwareMode::Vrp) + "-" +
                     gatingSchemeName(GatingScheme::Combined);
  C.push_back(std::move(Comb));
  return C;
}

std::vector<std::string> og::allWorkloadNames() {
  return {"compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl",
          "vortex"};
}

std::vector<ExperimentSpec> og::makeStandardSweep(double Scale) {
  return makeStandardSweep(allWorkloadNames(), Scale);
}

std::vector<ExperimentSpec>
og::makeStandardSweep(const std::vector<std::string> &Workloads,
                      double Scale) {
  std::vector<ExperimentSpec> Sweep;
  for (const std::string &W : Workloads)
    for (ExperimentSpec S : standardConfigs()) {
      S.Workload = W;
      S.Scale = Scale;
      S.Seed = specSeed(S);
      Sweep.push_back(std::move(S));
    }
  return Sweep;
}

std::vector<ExperimentSpec>
og::makeMatrixSweep(const std::vector<std::string> &Workloads, double Scale) {
  // The width-mechanism axis. ISA policy only matters when software
  // narrowing runs, so the baseline and pure-hardware mechanisms appear
  // once while each software mode appears under both policies.
  std::vector<ExperimentSpec> Mechanisms;
  Mechanisms.push_back(makeConfig("baseline", SoftwareMode::None,
                                  GatingScheme::None, IsaPolicy::Extended));
  Mechanisms.push_back(makeConfig("hw-sig", SoftwareMode::None,
                                  GatingScheme::HwSignificance,
                                  IsaPolicy::Extended));
  Mechanisms.push_back(makeConfig("hw-size", SoftwareMode::None,
                                  GatingScheme::HwSize, IsaPolicy::Extended));
  struct SwMode {
    const char *Label;
    SoftwareMode Sw;
  };
  const SwMode SwModes[] = {{"conv-vrp", SoftwareMode::ConventionalVrp},
                            {"vrp", SoftwareMode::Vrp},
                            {"vrs-50", SoftwareMode::Vrs}};
  for (const SwMode &M : SwModes) {
    Mechanisms.push_back(makeConfig(M.Label, M.Sw, GatingScheme::Software,
                                    IsaPolicy::Extended));
    ExperimentSpec Base = makeConfig(M.Label, M.Sw, GatingScheme::Software,
                                     IsaPolicy::BaseAlpha);
    Base.ConfigLabel += "/base-alpha";
    Mechanisms.push_back(std::move(Base));
  }
  ExperimentSpec Comb = makeConfig("", SoftwareMode::Vrp,
                                   GatingScheme::Combined,
                                   IsaPolicy::Extended);
  Comb.ConfigLabel = std::string("comb-") +
                     softwareModeName(SoftwareMode::Vrp) + "-" +
                     gatingSchemeName(GatingScheme::Combined);
  Mechanisms.push_back(std::move(Comb));

  std::vector<ExperimentSpec> Sweep;
  for (const std::string &W : Workloads)
    for (ExperimentSpec S : Mechanisms) {
      S.Workload = W;
      S.Scale = Scale;
      S.Seed = specSeed(S);
      Sweep.push_back(std::move(S));
    }
  return Sweep;
}
