//===- driver/Driver.cpp --------------------------------------------------==//

#include "driver/Driver.h"

#include "driver/JobQueue.h"
#include "driver/ThreadPool.h"
#include "sample/SamplePlanCache.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <exception>
#include <map>
#include <memory>

using namespace og;

PipelineResult og::runSpecPipeline(const ExperimentSpec &Spec, Rng &R) {
  (void)R; // the standard pipeline is fully deterministic
  Workload W = makeWorkload(Spec.Workload, Spec.Scale);
  return runPipeline(W, Spec.Config);
}

namespace {

/// A workload built once per sweep, with its base program pre-decoded.
/// Many specs reference the same (workload, scale) — the standard sweep
/// crosses every workload with seven configurations — so sharing one
/// Workload and one DecodedProgram across those jobs replaces per-spec
/// rebuild + re-decode. Built serially before the parallel phase and
/// only read afterwards, so workers need no locking.
struct SharedWorkload {
  Workload W;
  std::unique_ptr<DecodedProgram> Decoded;

  explicit SharedWorkload(Workload Built) : W(std::move(Built)) {
    Decoded = std::make_unique<DecodedProgram>(W.Prog);
  }
};

} // namespace

SweepResult og::runSweep(const std::vector<ExperimentSpec> &Specs,
                         const SweepOptions &Opts) {
  SweepResult Result;
  Result.Outcomes.resize(Specs.size());

  // Default job: build each distinct workload once, share across specs.
  std::map<std::pair<std::string, double>,
           std::shared_ptr<const SharedWorkload>>
      WorkloadCache;
  SamplePlanCache PlanCache;
  ExperimentJob SharedJob;
  if (!Opts.Job) {
    for (const ExperimentSpec &Spec : Specs) {
      auto Key = std::make_pair(Spec.Workload, Spec.Scale);
      if (!WorkloadCache.count(Key))
        WorkloadCache.emplace(
            Key, std::make_shared<SharedWorkload>(
                     makeWorkload(Spec.Workload, Spec.Scale)));
    }
    SharedJob = [&WorkloadCache, &PlanCache](const ExperimentSpec &Spec,
                                             Rng &R) {
      (void)R;
      const SharedWorkload &SW =
          *WorkloadCache.at({Spec.Workload, Spec.Scale});
      // Sampled cells whose transformed binaries match share one interval
      // profile / plan / checkpoint set through the sweep-lifetime cache
      // (sample/SamplePlanCache.h); results are identical either way, so
      // reports stay byte-identical across --jobs and cache on/off.
      return runPipeline(SW.W, Spec.Config, SW.Decoded.get(),
                         Spec.Config.Sample.enabled() ? &PlanCache : nullptr);
    };
  }
  const ExperimentJob &Job = Opts.Job ? Opts.Job : SharedJob;

  JobQueue Queue(Specs.size());
  auto RunOne = [&](size_t I) {
    JobOutcome &Out = Result.Outcomes[I];
    Rng R(effectiveSeed(Specs[I]));
    try {
      Out.Result = Job(Specs[I], R);
      Out.Ok = true;
      if (Opts.Consume) {
        Opts.Consume(I, Specs[I], Out.Result);
        // The consumer has reduced what it needs; drop the heavy result
        // (transformed Program, histograms) now instead of at sweep end.
        Out.Result = PipelineResult();
      }
    } catch (const std::exception &E) {
      Out.Error = "spec '" + Specs[I].name() + "': " + E.what();
    } catch (...) {
      Out.Error = "spec '" + Specs[I].name() + "': unknown exception";
    }
    if (!Out.Ok && !Opts.KeepGoing)
      Queue.cancel();
  };
  auto WorkerLoop = [&] {
    size_t I;
    while (Queue.pop(I))
      RunOne(I);
  };

  // No point spawning more workers than there are jobs.
  const unsigned Jobs = static_cast<unsigned>(
      std::min<size_t>(Opts.Jobs, Specs.size()));
  if (Jobs <= 1) {
    WorkerLoop();
  } else {
    ThreadPool Pool(Jobs);
    for (unsigned T = 0; T < Jobs; ++T)
      Pool.submit(WorkerLoop);
    Pool.wait();
  }

  // Serial aggregation in spec order: the report bytes are independent of
  // job count and completion order.
  Result.AllOk = true;
  for (size_t I = 0; I < Specs.size(); ++I) {
    const JobOutcome &Out = Result.Outcomes[I];
    if (Out.Ok) {
      if (!Opts.Consume)
        Result.Aggregate.add(Specs[I], Out.Result);
    } else {
      Result.AllOk = false;
      if (Result.FirstError.empty() && !Out.Error.empty())
        Result.FirstError = Out.Error;
    }
  }
  if (!Result.AllOk && Result.FirstError.empty())
    Result.FirstError = "sweep cancelled before all jobs ran";
  return Result;
}
