//===- driver/Driver.cpp --------------------------------------------------==//

#include "driver/Driver.h"

#include "driver/JobQueue.h"
#include "driver/ThreadPool.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <exception>

using namespace og;

PipelineResult og::runSpecPipeline(const ExperimentSpec &Spec, Rng &R) {
  (void)R; // the standard pipeline is fully deterministic
  Workload W = makeWorkload(Spec.Workload, Spec.Scale);
  return runPipeline(W, Spec.Config);
}

SweepResult og::runSweep(const std::vector<ExperimentSpec> &Specs,
                         const SweepOptions &Opts) {
  SweepResult Result;
  Result.Outcomes.resize(Specs.size());
  const ExperimentJob &Job = Opts.Job ? Opts.Job : runSpecPipeline;

  JobQueue Queue(Specs.size());
  auto RunOne = [&](size_t I) {
    JobOutcome &Out = Result.Outcomes[I];
    Rng R(effectiveSeed(Specs[I]));
    try {
      Out.Result = Job(Specs[I], R);
      Out.Ok = true;
    } catch (const std::exception &E) {
      Out.Error = "spec '" + Specs[I].name() + "': " + E.what();
    } catch (...) {
      Out.Error = "spec '" + Specs[I].name() + "': unknown exception";
    }
    if (!Out.Ok && !Opts.KeepGoing)
      Queue.cancel();
  };
  auto WorkerLoop = [&] {
    size_t I;
    while (Queue.pop(I))
      RunOne(I);
  };

  // No point spawning more workers than there are jobs.
  const unsigned Jobs = static_cast<unsigned>(
      std::min<size_t>(Opts.Jobs, Specs.size()));
  if (Jobs <= 1) {
    WorkerLoop();
  } else {
    ThreadPool Pool(Jobs);
    for (unsigned T = 0; T < Jobs; ++T)
      Pool.submit(WorkerLoop);
    Pool.wait();
  }

  // Serial aggregation in spec order: the report bytes are independent of
  // job count and completion order.
  Result.AllOk = true;
  for (size_t I = 0; I < Specs.size(); ++I) {
    const JobOutcome &Out = Result.Outcomes[I];
    if (Out.Ok) {
      Result.Aggregate.add(Specs[I], Out.Result);
    } else {
      Result.AllOk = false;
      if (Result.FirstError.empty() && !Out.Error.empty())
        Result.FirstError = Out.Error;
    }
  }
  if (!Result.AllOk && Result.FirstError.empty())
    Result.FirstError = "sweep cancelled before all jobs ran";
  return Result;
}
