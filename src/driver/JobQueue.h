//===- driver/JobQueue.h - Sharded job-index dispenser -----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free dispenser of job indices [0, NumJobs). Workers pop the
/// next unclaimed index until the queue drains or a failing job cancels
/// the run. Claiming is a single fetch_add, so every index is handed out
/// exactly once regardless of worker count — the shard-coverage property
/// DriverTest checks.
///
//===----------------------------------------------------------------------===//

#ifndef OG_DRIVER_JOBQUEUE_H
#define OG_DRIVER_JOBQUEUE_H

#include <atomic>
#include <cstddef>

namespace og {

/// Dispenses each index in [0, size) exactly once across any number of
/// concurrently popping threads.
class JobQueue {
public:
  explicit JobQueue(size_t NumJobs) : NumJobs(NumJobs) {}

  /// Claims the next index into \p Index. Returns false once the queue is
  /// drained or cancelled; a false return never consumes an index.
  bool pop(size_t &Index) {
    if (Cancelled.load(std::memory_order_acquire))
      return false;
    size_t I = Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= NumJobs)
      return false;
    Index = I;
    return true;
  }

  /// Stops handing out further indices (already-claimed jobs finish).
  void cancel() { Cancelled.store(true, std::memory_order_release); }

  bool cancelled() const {
    return Cancelled.load(std::memory_order_acquire);
  }

  size_t size() const { return NumJobs; }

private:
  std::atomic<size_t> Next{0};
  std::atomic<bool> Cancelled{false};
  size_t NumJobs;
};

} // namespace og

#endif // OG_DRIVER_JOBQUEUE_H
