//===- driver/Driver.h - Parallel experiment driver --------------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// runSweep shards a vector of ExperimentSpecs across N worker threads
/// (JobQueue + ThreadPool) and collects per-job outcomes into a vector
/// aligned with the input specs. Aggregation happens after the parallel
/// phase, serially and in spec order, so the aggregate report is
/// byte-identical for any job count. Each job gets a deterministic Rng
/// seeded from its spec (never from time or scheduling), and a job that
/// throws fails the run with its spec named; by default a failure also
/// cancels the indices not yet claimed.
///
/// Under the default job, each distinct (workload, scale) is built and
/// pre-decoded (sim/ExecEngine.h) once per sweep and shared read-only
/// across every spec that references it, instead of rebuilt per job.
/// Sampled sweeps additionally share plan/checkpoint artifacts between
/// cells that execute the same dynamic instruction stream, through a
/// sweep-lifetime SamplePlanCache (sample/SamplePlanCache.h) — a
/// compute-once map that yields bit-identical results to the uncached
/// path, so the byte-identical-across-jobs guarantee is unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef OG_DRIVER_DRIVER_H
#define OG_DRIVER_DRIVER_H

#include "driver/ExperimentSpec.h"
#include "driver/ResultAggregator.h"
#include "support/Rng.h"

#include <functional>
#include <string>
#include <vector>

namespace og {

/// What happened to one job.
struct JobOutcome {
  /// Job ran to completion. false for both failed and never-run
  /// (cancelled) jobs; the latter have an empty Error.
  bool Ok = false;
  std::string Error; ///< "spec 'compress/vrp': <what>" when the job threw
  PipelineResult Result; ///< valid only when Ok
};

/// The work run for each spec. \p R is seeded deterministically per spec
/// (effectiveSeed); jobs with randomized components draw from it so
/// results do not depend on which worker ran them.
using ExperimentJob =
    std::function<PipelineResult(const ExperimentSpec &Spec, Rng &R)>;

/// The default job: build the spec's workload and run the full pipeline.
PipelineResult runSpecPipeline(const ExperimentSpec &Spec, Rng &R);

/// Streaming per-job consumer (SweepOptions::Consume): called on the
/// worker thread immediately after the job for \p Index succeeds, with
/// the spec and the still-owned result. Each index fires exactly once and
/// distinct indices fire concurrently, so a consumer writing to
/// index-addressed slots needs no locking of its own.
using SweepConsumer = std::function<void(
    size_t Index, const ExperimentSpec &Spec, PipelineResult &Result)>;

/// Sweep execution knobs.
struct SweepOptions {
  /// Worker threads. 1 runs everything inline on the calling thread.
  unsigned Jobs = 1;
  /// false (default): the first failure cancels not-yet-claimed jobs.
  /// true: run every job regardless and report all failures.
  bool KeepGoing = false;
  /// The per-spec work; defaults to runSpecPipeline.
  ExperimentJob Job;
  /// Optional streaming consumer (see SweepConsumer). When set, the
  /// driver releases each PipelineResult right after its callback
  /// returns (Outcomes keep Ok/Error but carry empty Results) and skips
  /// building SweepResult::Aggregate — the consumer owns reduction. The
  /// sweep service uses this to reduce results to report cells on the
  /// fly instead of holding every transformed Program until the end.
  SweepConsumer Consume;
};

/// Everything a sweep produced.
struct SweepResult {
  /// One outcome per input spec, index-aligned.
  std::vector<JobOutcome> Outcomes;
  bool AllOk = false;
  /// Failure message of the lowest-index failed job; empty when AllOk.
  /// With KeepGoing this is deterministic even when several jobs fail;
  /// under cancel-on-failure the set of jobs that ran before the cancel
  /// is scheduling-dependent, so only *a* failure is guaranteed, not
  /// which one.
  std::string FirstError;
  /// Aggregate over the successful jobs, filled in spec order.
  ResultAggregator Aggregate;
};

/// Runs \p Specs under \p Opts and returns all outcomes. Never throws;
/// job exceptions are captured into the corresponding outcome.
SweepResult runSweep(const std::vector<ExperimentSpec> &Specs,
                     const SweepOptions &Opts = SweepOptions());

} // namespace og

#endif // OG_DRIVER_DRIVER_H
