//===- driver/ResultAggregator.h - Deterministic sweep reports ---*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects per-cell pipeline results (in any completion order) and
/// renders one deterministic aggregate report on top of support/Table and
/// support/Statistic. Rows are sorted by (workload, config label) and
/// savings are computed against each workload's "baseline" cell at print
/// time, so the report bytes depend only on the set of cells — never on
/// worker count, scheduling, or wall-clock. That is the property that
/// lets `ogate-sim --jobs 8` promise byte-identical output to `--jobs 1`.
///
//===----------------------------------------------------------------------===//

#ifndef OG_DRIVER_RESULTAGGREGATOR_H
#define OG_DRIVER_RESULTAGGREGATOR_H

#include "driver/ExperimentSpec.h"
#include "support/Statistic.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace og {

/// Order-independent accumulator of sweep cells.
class ResultAggregator {
public:
  /// The reduced per-cell record kept for reporting; exposed so the
  /// JSON serializer (report/ReportSchema.h) renders the same cells the
  /// printed table shows.
  struct Cell {
    std::string Workload;
    std::string Label;
    uint64_t DynInsts = 0;
    uint64_t Cycles = 0;
    double Ipc = 0.0;
    double Energy = 0.0;
    double Ed2 = 0.0;
    uint64_t Narrowed = 0;
    uint64_t WidthBearing = 0;
    /// Analysis-cache counters of the transform phase (PipelineResult::
    /// OptStats); serialized only on request (`ogate-sim --opt-stats`) so
    /// default sweep documents keep their baseline-stable shape.
    StatisticSet Opt;
    /// Sampled-estimation provenance (PipelineResult::Sample); Used is
    /// false for exact cells, and exact sweep documents stay
    /// byte-identical to their pre-sampling shape.
    PipelineSampleInfo Sample;
    /// Dispatch/superblock counters of the ref run (PipelineResult::
    /// Engine); serialized only on request (`ogate-sim --engine-stats`)
    /// so default sweep documents keep their baseline-stable shape.
    EngineCounters Engine;
  };

  /// The reduction from a full pipeline result to the reported record —
  /// the single place the Cell fields are derived, shared by the batch
  /// driver and the sweep service (which caches Cells, not results, and
  /// must reduce identically for cached and fresh cells to agree).
  static Cell makeCell(const ExperimentSpec &Spec,
                       const PipelineResult &Result);

  /// Records one finished cell. Thread-compatible, not thread-safe: the
  /// driver adds results serially in spec order after the parallel phase.
  void add(const ExperimentSpec &Spec, const PipelineResult &Result);

  /// Records an already-reduced cell (the sweep service's path: cells
  /// arrive from the persistent cache or from streaming reduction).
  void add(Cell C);

  /// Number of recorded cells.
  size_t size() const { return Cells.size(); }

  /// Cells sorted by (workload, config label) — the row order of both
  /// the printed table and the JSON document, independent of insertion
  /// order. (workload, config) keys are normally unique; duplicates
  /// (two add() calls for the same cell) keep their insertion order —
  /// deterministic because aggregation is serial in spec order.
  std::vector<Cell> sortedCells() const;

  /// The first duplicated "workload/label" key in sorted order, or ""
  /// when every cell key is unique. A sweep that produces duplicates
  /// almost certainly has a spec-construction bug; tools check this
  /// (always, not just in debug builds) and report it rather than
  /// printing a silently double-rowed table.
  std::string duplicateKey() const;

  /// Sweep-wide counters (cells, dynamic instructions, cycles, narrowed
  /// opcodes) in a deterministic registration order.
  StatisticSet stats() const;

  /// Prints the per-cell table plus the counter summary. Deterministic:
  /// same cells (in any insertion order) => same bytes.
  void print(std::ostream &OS) const;

private:
  std::vector<Cell> Cells;
};

} // namespace og

#endif // OG_DRIVER_RESULTAGGREGATOR_H
