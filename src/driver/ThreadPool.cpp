//===- driver/ThreadPool.cpp ----------------------------------------------==//

#include "driver/ThreadPool.h"

using namespace og;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads <= 1)
    return; // inline mode
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  TaskReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  if (Workers.empty()) {
    Task();
    return;
  }
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Tasks.push_back(std::move(Task));
  }
  TaskReady.notify_one();
}

void ThreadPool::wait() {
  if (Workers.empty())
    return;
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Tasks.empty() && Active == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TaskReady.wait(Lock, [this] { return Stopping || !Tasks.empty(); });
      if (Tasks.empty())
        return; // stopping and drained
      Task = std::move(Tasks.front());
      Tasks.pop_front();
      ++Active;
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      --Active;
      if (Tasks.empty() && Active == 0)
        Idle.notify_all();
    }
  }
}

unsigned ThreadPool::defaultJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}
