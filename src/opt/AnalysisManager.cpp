//===- opt/AnalysisManager.cpp --------------------------------------------==//

#include "opt/AnalysisManager.h"

#include <cassert>

using namespace og;

void AnalysisManager::count(const char *Name, uint64_t Delta) {
  if (Stats)
    Stats->add(Name, Delta);
}

void AnalysisManager::dropAll(Slot &S) {
  uint64_t Live = (S.G ? 1 : 0) + (S.DT ? 1 : 0) + (S.LI ? 1 : 0) +
                  (S.LV ? 1 : 0) + (S.RD ? 1 : 0) + (S.UW ? 1 : 0);
  if (Live)
    count("analysis-invalidations", Live);
  // Dependents before dependencies (DominatorTree holds a Cfg pointer,
  // UsefulWidth a ReachingDefs reference).
  S.LI.reset();
  S.DT.reset();
  S.UW.reset();
  S.RD.reset();
  S.LV.reset();
  S.G.reset();
}

void AnalysisManager::clearBuildHistory(Slot &S) {
  for (unsigned K = 0; K < NumAnalysisKinds; ++K) {
    S.BuiltFn[K] = nullptr;
    S.BuiltEpoch[K] = 0;
  }
}

AnalysisManager::Slot &AnalysisManager::refresh(int32_t F) {
  assert(F >= 0 && static_cast<size_t>(F) < P.Funcs.size() &&
         "function id out of range");
  if (Slots.size() < P.Funcs.size())
    Slots.resize(P.Funcs.size());
  Slot &S = Slots[F];
  const Function &Fn = P.Funcs[F];
  if (S.Fn != &Fn || S.Epoch != Fn.Epoch) {
    // A moved Function (Funcs reallocation) legitimately forces a
    // rebuild at an unchanged epoch, and the allocator may even hand the
    // original address back on a later growth — forget the build history
    // so the same-epoch guard cannot false-positive on that ABA. The
    // guard only tracks rebuilds at a stable address.
    if (S.Fn != &Fn)
      clearBuildHistory(S);
    dropAll(S);
    S.Fn = &Fn;
    S.Epoch = Fn.Epoch;
  }
  return S;
}

bool AnalysisManager::lookup(const Slot &S, bool Present) {
  (void)S;
  count(Present ? "analysis-hits" : "analysis-misses");
  return Present;
}

void AnalysisManager::noteBuild(Slot &S, AnalysisKind K) {
  unsigned I = static_cast<unsigned>(K);
  // The same (function address, epoch) building the same analysis twice
  // means the cache lost an entry without any mutation — exactly the
  // per-iteration rebuild class of bug this manager removes.
  bool SameKey = S.BuiltFn[I] == S.Fn && S.BuiltEpoch[I] == S.Epoch &&
                 (K != AnalysisKind::UsefulWidth ||
                  S.BuiltUWThroughArith == S.UWThroughArith);
  if (SameKey)
    count("same-epoch-rebuilds");
  assert(!SameKey && "analysis rebuilt twice at one epoch");
  S.BuiltFn[I] = S.Fn;
  S.BuiltEpoch[I] = S.Epoch;
  if (K == AnalysisKind::UsefulWidth)
    S.BuiltUWThroughArith = S.UWThroughArith;
  static const char *BuildCounter[NumAnalysisKinds] = {
      "cfg-builds",      "domtree-builds",      "loops-builds",
      "liveness-builds", "reachingdefs-builds", "usefulwidth-builds"};
  count(BuildCounter[I]);
}

// The ensure* helpers build missing dependencies WITHOUT touching the
// hit/miss counters: only the analysis the caller actually asked for
// counts as cache traffic, so the reported hit rate measures query-level
// reuse, not dependency-chain bookkeeping. Build counters still count
// every construction.

const Cfg &AnalysisManager::ensureCfg(Slot &S) {
  if (!S.G) {
    S.G = std::make_unique<Cfg>(*S.Fn);
    noteBuild(S, AnalysisKind::Cfg);
  }
  return *S.G;
}

const DominatorTree &AnalysisManager::ensureDominators(Slot &S) {
  if (!S.DT) {
    S.DT = std::make_unique<DominatorTree>(ensureCfg(S));
    noteBuild(S, AnalysisKind::Dominators);
  }
  return *S.DT;
}

const ReachingDefs &AnalysisManager::ensureReachingDefs(Slot &S) {
  if (!S.RD) {
    S.RD = std::make_unique<ReachingDefs>(*S.Fn, ensureCfg(S));
    noteBuild(S, AnalysisKind::ReachingDefs);
  }
  return *S.RD;
}

const Cfg &AnalysisManager::cfg(int32_t F) {
  Slot &S = refresh(F);
  lookup(S, S.G != nullptr);
  return ensureCfg(S);
}

const DominatorTree &AnalysisManager::dominators(int32_t F) {
  Slot &S = refresh(F);
  lookup(S, S.DT != nullptr);
  return ensureDominators(S);
}

const LoopInfo &AnalysisManager::loops(int32_t F) {
  Slot &S = refresh(F);
  if (lookup(S, S.LI != nullptr))
    return *S.LI;
  const DominatorTree &DT = ensureDominators(S);
  S.LI = std::make_unique<LoopInfo>(*S.G, DT);
  noteBuild(S, AnalysisKind::Loops);
  return *S.LI;
}

const Liveness &AnalysisManager::liveness(int32_t F) {
  Slot &S = refresh(F);
  if (lookup(S, S.LV != nullptr))
    return *S.LV;
  S.LV = std::make_unique<Liveness>(*S.Fn, ensureCfg(S));
  noteBuild(S, AnalysisKind::Liveness);
  return *S.LV;
}

const ReachingDefs &AnalysisManager::reachingDefs(int32_t F) {
  Slot &S = refresh(F);
  lookup(S, S.RD != nullptr);
  return ensureReachingDefs(S);
}

const UsefulWidth &AnalysisManager::usefulWidth(int32_t F,
                                                bool ThroughArithmetic) {
  Slot &S = refresh(F);
  if (S.UW && S.UWThroughArith != ThroughArithmetic) {
    count("analysis-invalidations");
    S.UW.reset();
  }
  if (lookup(S, S.UW != nullptr))
    return *S.UW;
  const ReachingDefs &RD = ensureReachingDefs(S);
  UsefulWidth::Options O;
  O.ThroughArithmetic = ThroughArithmetic;
  S.UWThroughArith = ThroughArithmetic;
  S.UW = std::make_unique<UsefulWidth>(*S.Fn, RD, O);
  noteBuild(S, AnalysisKind::UsefulWidth);
  return *S.UW;
}

void AnalysisManager::invalidate(int32_t F, const PreservedAnalyses &PA) {
  assert(F >= 0 && static_cast<size_t>(F) < P.Funcs.size() &&
         "function id out of range");
  if (Slots.size() < P.Funcs.size())
    Slots.resize(P.Funcs.size());
  Slot &S = Slots[F];
  const Function &Fn = P.Funcs[F];

  // A moved Function (Funcs reallocation) invalidates everything: the
  // cached analyses hold pointers to the old storage. Forget the build
  // history too (see refresh()).
  if (S.Fn != &Fn) {
    clearBuildHistory(S);
    dropAll(S);
    S.Fn = &Fn;
    S.Epoch = Fn.Epoch;
    return;
  }

  // Normalize dependency chains (see PreservedAnalyses).
  unsigned M = PA.mask();
  if (!(M & analysisBit(AnalysisKind::Cfg)))
    M &= ~(analysisBit(AnalysisKind::Dominators) |
           analysisBit(AnalysisKind::Loops));
  if (!(M & analysisBit(AnalysisKind::Dominators)))
    M &= ~analysisBit(AnalysisKind::Loops);
  if (!(M & analysisBit(AnalysisKind::ReachingDefs)))
    M &= ~analysisBit(AnalysisKind::UsefulWidth);

  uint64_t Dropped = 0;
  auto apply = [&](AnalysisKind K, auto &Ptr) {
    if (!Ptr)
      return;
    if (!(M & analysisBit(K))) {
      Ptr.reset();
      ++Dropped;
    }
  };
  // Dependents first so nothing ever dangles mid-walk.
  apply(AnalysisKind::Loops, S.LI);
  apply(AnalysisKind::Dominators, S.DT);
  apply(AnalysisKind::UsefulWidth, S.UW);
  apply(AnalysisKind::ReachingDefs, S.RD);
  apply(AnalysisKind::Liveness, S.LV);
  apply(AnalysisKind::Cfg, S.G);
  if (Dropped)
    count("analysis-invalidations", Dropped);

  // Re-stamp: whatever survived is declared valid at the new epoch.
  S.Epoch = Fn.Epoch;
}

void AnalysisManager::invalidateAll() {
  for (Slot &S : Slots) {
    dropAll(S);
    // Explicit whole-cache flush: also forget the build history so a
    // rebuild at an unchanged epoch is not misread as a cache-loss bug.
    S = Slot();
  }
}
