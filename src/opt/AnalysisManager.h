//===- opt/AnalysisManager.h - Cached per-function analyses ------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A typed per-function cache for the intra-procedural analyses every
/// transform stage needs (Cfg, DominatorTree, LoopInfo, Liveness,
/// ReachingDefs, UsefulWidth). Before this manager existed each pass
/// rebuilt its analyses from scratch per function per invocation — VRS's
/// re-VRP over a program whose functions are almost all untouched paid
/// the full price again on every sweep cell.
///
/// Validity is keyed on Function::Epoch: every mutation site
/// (program/Builder, program/Clone, the vrp/vrs rewriting passes) bumps
/// the mutated function's epoch, and a cached analysis is reused only
/// while the epoch (and the Function's address — Program::Funcs may
/// reallocate when the specializer clones callees) still matches the one
/// it was computed at. A pass that knows its mutation left some analyses
/// valid declares that through PreservedAnalyses: `invalidate(F, PA)`
/// re-stamps the preserved analyses to the new epoch and frees the rest.
/// Wrong preservation declarations are the one way to break the
/// bit-identity of transformed programs, so declare conservatively; the
/// per-kind preservation rules used by the in-tree passes are documented
/// at the PreservedAnalyses factories below.
///
/// References returned by the manager stay valid until the next
/// invalidation (explicit or epoch-triggered) of that function. The
/// manager is not thread-safe; the driver builds one per experiment cell.
///
/// Cache traffic lands in an optional support/Statistic set ("opt"
/// counters group in reports): analysis-hits / analysis-misses /
/// analysis-invalidations, per-kind build counts, and
/// same-epoch-rebuilds, which must stay zero (an analysis rebuilt twice
/// at one epoch means the cache was dropped without a mutation — the
/// regression the manager exists to prevent).
///
//===----------------------------------------------------------------------===//

#ifndef OG_OPT_ANALYSISMANAGER_H
#define OG_OPT_ANALYSISMANAGER_H

#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "analysis/ReachingDefs.h"
#include "support/Statistic.h"
#include "vrp/UsefulWidth.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace og {

/// The analyses the manager caches.
enum class AnalysisKind : unsigned {
  Cfg = 0,
  Dominators,
  Loops,
  Liveness,
  ReachingDefs,
  UsefulWidth,
};
constexpr unsigned NumAnalysisKinds = 6;

constexpr unsigned analysisBit(AnalysisKind K) {
  return 1u << static_cast<unsigned>(K);
}

/// What a mutating pass declares it kept valid. The manager normalizes
/// dependency chains: Dominators/Loops cannot outlive the Cfg they were
/// built from, and UsefulWidth holds a reference into ReachingDefs, so
/// preserving a dependent without its dependency silently preserves
/// neither.
class PreservedAnalyses {
public:
  /// Nothing survives (structural mutation: split blocks, cloned regions,
  /// rewritten terminators, new guard blocks).
  static PreservedAnalyses none() { return PreservedAnalyses(); }

  /// Everything survives (the pass looked but did not touch).
  static PreservedAnalyses all() {
    PreservedAnalyses PA;
    PA.Mask = (1u << NumAnalysisKinds) - 1;
    return PA;
  }

  /// A width-only rewrite (vrp/Narrowing: only Instruction::W changes).
  /// Cfg/Dominators/Loops/Liveness/ReachingDefs read opcodes, registers
  /// and control flow but never widths, so all five survive; UsefulWidth
  /// derives demand from store/msk widths and is dropped.
  static PreservedAnalyses widthRewrite() {
    PreservedAnalyses PA;
    PA.Mask = analysisBit(AnalysisKind::Cfg) |
              analysisBit(AnalysisKind::Dominators) |
              analysisBit(AnalysisKind::Loops) |
              analysisBit(AnalysisKind::Liveness) |
              analysisBit(AnalysisKind::ReachingDefs);
    return PA;
  }

  /// An in-block instruction rewrite or deletion that touches no
  /// terminator (vrs/ConstProp fold + DCE): block edges are intact so
  /// Cfg and Dominators survive, but instruction operands/indices changed
  /// — Loops (which records the iterator's instruction index and shape),
  /// Liveness, ReachingDefs and UsefulWidth are dropped.
  static PreservedAnalyses cfgOnly() {
    PreservedAnalyses PA;
    PA.Mask = analysisBit(AnalysisKind::Cfg) |
              analysisBit(AnalysisKind::Dominators);
    return PA;
  }

  PreservedAnalyses &preserve(AnalysisKind K) {
    Mask |= analysisBit(K);
    return *this;
  }

  bool isPreserved(AnalysisKind K) const { return Mask & analysisBit(K); }
  unsigned mask() const { return Mask; }

private:
  unsigned Mask = 0;
};

/// Lazily-built, epoch-validated analysis cache over one Program.
class AnalysisManager {
public:
  /// \p Stats, when given, receives the cache counters (it must outlive
  /// the manager).
  explicit AnalysisManager(const Program &P, StatisticSet *Stats = nullptr)
      : P(P), Stats(Stats) {}

  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  const Program &program() const { return P; }
  StatisticSet *statistics() const { return Stats; }

  // --- Queries. Each returns a cached analysis when the function's epoch
  // (and address) still match, and rebuilds otherwise.
  const Cfg &cfg(int32_t F);
  const DominatorTree &dominators(int32_t F);
  const LoopInfo &loops(int32_t F);
  const Liveness &liveness(int32_t F);
  const ReachingDefs &reachingDefs(int32_t F);
  /// UsefulWidth additionally keys on the ThroughArithmetic ablation flag;
  /// asking with a different flag than cached rebuilds.
  const UsefulWidth &usefulWidth(int32_t F, bool ThroughArithmetic);

  /// Called by a pass after it mutated function \p F (and bumped its
  /// epoch): frees everything not named in \p PA and re-stamps the
  /// preserved analyses to the new epoch. Without this call staleness is
  /// still detected lazily at the next query — invalidate() exists so a
  /// pass can *keep* analyses across its own mutation.
  void invalidate(int32_t F, const PreservedAnalyses &PA);

  /// Drops every cached analysis of every function.
  void invalidateAll();

private:
  struct Slot {
    const Function *Fn = nullptr; ///< address validity (Funcs may realloc)
    uint64_t Epoch = 0;           ///< epoch the cached analyses match
    std::unique_ptr<Cfg> G;
    std::unique_ptr<DominatorTree> DT;
    std::unique_ptr<LoopInfo> LI;
    std::unique_ptr<Liveness> LV;
    std::unique_ptr<ReachingDefs> RD;
    std::unique_ptr<UsefulWidth> UW;
    bool UWThroughArith = false;
    // Regression guard: where each kind was last *built*. Rebuilding at
    // an unchanged (address, epoch) means cache loss without mutation.
    const Function *BuiltFn[NumAnalysisKinds] = {};
    uint64_t BuiltEpoch[NumAnalysisKinds] = {};
    bool BuiltUWThroughArith = false;
  };

  /// Slot for \p F, with stale contents (address or epoch mismatch)
  /// dropped.
  Slot &refresh(int32_t F);
  void dropAll(Slot &S);
  void clearBuildHistory(Slot &S);
  void count(const char *Name, uint64_t Delta = 1);
  void noteBuild(Slot &S, AnalysisKind K);
  /// Counts a hit or miss; returns true on hit (cached object present).
  bool lookup(const Slot &S, bool Present);
  // Build-if-absent without hit/miss counting — dependency resolution is
  // not user cache traffic (builds are still counted per kind).
  const Cfg &ensureCfg(Slot &S);
  const DominatorTree &ensureDominators(Slot &S);
  const ReachingDefs &ensureReachingDefs(Slot &S);

  const Program &P;
  StatisticSet *Stats;
  std::vector<Slot> Slots;
};

} // namespace og

#endif // OG_OPT_ANALYSISMANAGER_H
