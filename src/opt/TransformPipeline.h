//===- opt/TransformPipeline.h - Composable transform passes -----*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass layer over vrp/ and vrs/: a TransformPipeline is an ordered
/// list of named passes, each running against one Program and one shared
/// AnalysisManager so analyses built by an early pass survive into later
/// ones (a pass invalidates only what its mutation destroyed — see
/// opt/AnalysisManager.h). The existing SoftwareMode flows are expressed
/// as compositions of the stock passes:
///
///   None             — (empty pipeline)
///   ConventionalVrp  — narrow            (Ctx.Narrow.UseUsefulWidths=false)
///   Vrp              — narrow            (Ctx.Narrow.UseUsefulWidths=true)
///   Vrs              — narrow, specialize
///
/// A new gating mode is a new composition (or a new pass), not a new
/// hard-wired code path in pipeline/Pipeline.cpp. Stock pass factories:
/// makeNarrowPass(), makeSpecializePass(), makeCleanupPass() (constant/
/// branch folding + DCE, for custom compositions).
///
//===----------------------------------------------------------------------===//

#ifndef OG_OPT_TRANSFORMPIPELINE_H
#define OG_OPT_TRANSFORMPIPELINE_H

#include "opt/AnalysisManager.h"
#include "sim/Interpreter.h"
#include "vrp/Narrowing.h"
#include "vrs/Specializer.h"

#include <functional>
#include <string>
#include <vector>

namespace og {

enum class SoftwareMode; // pipeline/Pipeline.h

/// Everything the passes of one pipeline run read and produce. The caller
/// fills the configuration half before run(); passes deposit their
/// reports in the result half.
struct TransformContext {
  // --- Configuration (set by the caller).
  NarrowingOptions Narrow; ///< narrowing knobs, mode-adjusted; also used
                           ///< for the re-VRP inside the specialize pass
                           ///< (Vrs.Narrow is overridden with it)
  VrsOptions Vrs;          ///< specializer knobs (energy/test-cost etc.)
  RunOptions Train;        ///< VRS training input

  // --- Results (filled by passes).
  NarrowingReport Narrowing; ///< last narrow pass
  VrsReport VrsResult;       ///< specialize pass
  uint64_t CleanupFolded = 0;
  uint64_t CleanupBranchesFolded = 0;
  uint64_t CleanupRemoved = 0;
};

/// One transform pass: mutates \p P, keeps \p AM honest about what it
/// mutated, reports through \p Ctx.
using TransformPass =
    std::function<void(Program &P, AnalysisManager &AM, TransformContext &Ctx)>;

/// An ordered, named pass list.
class TransformPipeline {
public:
  TransformPipeline &add(std::string Name, TransformPass Pass) {
    Passes.push_back({std::move(Name), std::move(Pass)});
    return *this;
  }

  /// Runs every pass in order over the same program and manager.
  void run(Program &P, AnalysisManager &AM, TransformContext &Ctx) const {
    for (const NamedPass &NP : Passes)
      NP.Pass(P, AM, Ctx);
  }

  size_t size() const { return Passes.size(); }
  const std::string &passName(size_t I) const { return Passes[I].Name; }

private:
  struct NamedPass {
    std::string Name;
    TransformPass Pass;
  };
  std::vector<NamedPass> Passes;
};

/// vrp/Narrowing as a pass (re-encodes widths; reports to Ctx.Narrowing).
TransformPass makeNarrowPass();

/// vrs/Specializer as a pass (profile-guided region specialization,
/// including its internal re-narrow + cleanup; reports to Ctx.VrsResult).
TransformPass makeSpecializePass();

/// vrs/ConstProp constant folding + branch folding + DCE as a standalone
/// pass for custom compositions (counts land in Ctx.Cleanup*). Seeds its
/// range analysis from Ctx.Narrow.Seeds plus any guard facts a preceding
/// specialize pass deposited in Ctx.VrsResult.Seeds.
TransformPass makeCleanupPass();

/// The pipeline for one SoftwareMode (see file comment). The caller still
/// sets Ctx.Narrow.UseUsefulWidths to distinguish ConventionalVrp from
/// Vrp, exactly like the pre-pipeline switch did.
TransformPipeline makeSoftwareModePipeline(SoftwareMode Sw);

} // namespace og

#endif // OG_OPT_TRANSFORMPIPELINE_H
