//===- opt/TransformPipeline.cpp ------------------------------------------==//

#include "opt/TransformPipeline.h"

#include "pipeline/Pipeline.h"
#include "vrs/ConstProp.h"

using namespace og;

TransformPass og::makeNarrowPass() {
  return [](Program &P, AnalysisManager &AM, TransformContext &Ctx) {
    Ctx.Narrowing = narrowProgram(P, AM, Ctx.Narrow);
  };
}

TransformPass og::makeSpecializePass() {
  return [](Program &P, AnalysisManager &AM, TransformContext &Ctx) {
    // The specializer's internal re-VRP/re-narrow always runs under the
    // pipeline's narrowing configuration — derived here rather than
    // hand-mirrored by every caller into Ctx.Vrs.Narrow, so a
    // composition cannot silently specialize under different narrowing
    // knobs than its narrow pass.
    VrsOptions VO = Ctx.Vrs;
    VO.Narrow = Ctx.Narrow;
    Ctx.VrsResult = specializeProgram(P, AM, Ctx.Train, VO);
  };
}

TransformPass og::makeCleanupPass() {
  return [](Program &P, AnalysisManager &AM, TransformContext &Ctx) {
    // Both seed sources: caller-provided facts and the guard facts a
    // preceding specialize pass established — a cleanup composed after
    // specialization folds with the same knowledge the built-in VRS
    // step-3c cleanup had (it is literally the same runCleanup helper).
    std::vector<EdgeSeed> Seeds = Ctx.Narrow.Seeds;
    Seeds.insert(Seeds.end(), Ctx.VrsResult.Seeds.begin(),
                 Ctx.VrsResult.Seeds.end());
    CleanupCounts C = runCleanup(P, AM, Ctx.Narrow.Range, Seeds);
    Ctx.CleanupFolded += C.Folded;
    Ctx.CleanupBranchesFolded += C.BranchesFolded;
    Ctx.CleanupRemoved += C.Removed;
  };
}

TransformPipeline og::makeSoftwareModePipeline(SoftwareMode Sw) {
  TransformPipeline TP;
  switch (Sw) {
  case SoftwareMode::None:
    break;
  case SoftwareMode::ConventionalVrp:
  case SoftwareMode::Vrp:
    TP.add("narrow", makeNarrowPass());
    break;
  case SoftwareMode::Vrs:
    TP.add("narrow", makeNarrowPass());
    TP.add("specialize", makeSpecializePass());
    break;
  }
  return TP;
}
