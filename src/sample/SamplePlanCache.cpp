//===- sample/SamplePlanCache.cpp ------------------------------------------==//

#include "sample/SamplePlanCache.h"

#include "program/Program.h"
#include "sim/Interpreter.h"
#include "support/Hash.h"

#include <cstdio>

using namespace og;

namespace {

std::string sampleKey(const Program &P, const RunOptions &Ref,
                      const UarchConfig &Uarch, const SampleSpec &Spec,
                      bool IncludeWidths) {
  Fnv1a H;
  // The dynamic stream is the program text run under the run options.
  // Domain-separate the two key kinds so a warm key can never collide
  // with a stream key of the same program.
  H.u64(IncludeWidths ? 0x57u : 0x77u);
  hashProgram(H, P, IncludeWidths);
  hashRunOptions(H, Ref);
  // The uarch shapes the checkpoints (cache/predictor geometry) and the
  // plan is nominally uarch-independent, but keying on the full config
  // keeps the artifact a pure function of its inputs. Every spec field
  // shapes the plan and/or the capture layout.
  hashUarchConfig(H, Uarch);
  hashSampleSpec(H, Spec);

  char Buf[2 + 16 + 1];
  std::snprintf(Buf, sizeof Buf, "0x%016llx",
                static_cast<unsigned long long>(H.hash()));
  return Buf;
}

/// The compute-once protocol shared by both maps: first caller of a key
/// becomes the owner and fulfills the promise; everyone else waits on
/// the shared future. The mutex only guards the map — Compute runs
/// unlocked so distinct keys prepare in parallel.
template <typename T>
T getOrComputeIn(std::mutex &M,
                 std::map<std::string, std::shared_future<T>> &Map,
                 const std::string &Key, const std::function<T()> &Compute) {
  std::shared_future<T> Fut;
  std::promise<T> Owner;
  bool IsOwner = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(Key);
    if (It == Map.end()) {
      IsOwner = true;
      Fut = Owner.get_future().share();
      Map.emplace(Key, Fut);
    } else {
      Fut = It->second;
    }
  }
  if (IsOwner) {
    try {
      Owner.set_value(Compute());
    } catch (...) {
      Owner.set_exception(std::current_exception());
    }
  }
  return Fut.get();
}

} // namespace

std::string og::sampleStreamKey(const Program &P, const RunOptions &Ref,
                                const UarchConfig &Uarch,
                                const SampleSpec &Spec) {
  return sampleKey(P, Ref, Uarch, Spec, /*IncludeWidths=*/true);
}

std::string og::sampleWarmKey(const Program &P, const RunOptions &Ref,
                              const UarchConfig &Uarch,
                              const SampleSpec &Spec) {
  return sampleKey(P, Ref, Uarch, Spec, /*IncludeWidths=*/false);
}

SamplePlanCache::ArtifactsPtr
SamplePlanCache::getOrCompute(const std::string &Key,
                              const std::function<ArtifactsPtr()> &Compute) {
  return getOrComputeIn(M, Futures, Key, Compute);
}

SamplePlanCache::StreamEstimatePtr SamplePlanCache::getOrComputeEstimate(
    const std::string &Key,
    const std::function<StreamEstimatePtr()> &Compute) {
  return getOrComputeIn(M, EstFutures, Key, Compute);
}

size_t SamplePlanCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Futures.size();
}

size_t SamplePlanCache::estimateCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return EstFutures.size();
}
