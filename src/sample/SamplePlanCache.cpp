//===- sample/SamplePlanCache.cpp ------------------------------------------==//

#include "sample/SamplePlanCache.h"

#include "program/Program.h"

#include <cstdio>

using namespace og;

namespace {

/// 64-bit FNV-1a, accumulated field by field. Cheap, deterministic
/// across platforms, and collision-safe enough here: a collision between
/// two *different* streams in one sweep would need ~2^32 distinct cells.
class Fnv1a {
public:
  void bytes(const void *P, size_t N) {
    const unsigned char *B = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 0x100000001b3ull;
    }
  }
  void u64(uint64_t V) {
    // Hash the value, not the object representation: field widths and
    // signedness vary across the configs but must hash identically
    // whenever the values match.
    bytes(&V, sizeof V);
  }
  void f64(double V) { bytes(&V, sizeof V); }
  uint64_t hash() const { return H; }

private:
  uint64_t H = 0xcbf29ce484222325ull;
};

/// Hashes the program structurally: every field the interpreter reads,
/// walked in program order. A fraction of the cost of hashing the
/// disassembly (which renders the whole data segment as text), and —
/// with \p IncludeWidths false — the handle that lets width-only rewrite
/// cells share warm artifacts (see sampleWarmKey).
void hashProgram(Fnv1a &H, const Program &P, bool IncludeWidths) {
  H.u64(static_cast<uint64_t>(P.EntryFunc));
  H.u64(P.Data.size());
  if (!P.Data.empty())
    H.bytes(P.Data.data(), P.Data.size());
  H.u64(P.Funcs.size());
  for (const Function &F : P.Funcs) {
    H.u64(static_cast<uint64_t>(F.EntryBlock));
    H.u64(F.Blocks.size());
    for (const BasicBlock &B : F.Blocks) {
      H.u64(static_cast<uint64_t>(B.FallthroughSucc));
      H.u64(B.Insts.size());
      for (const Instruction &I : B.Insts) {
        H.u64(static_cast<uint64_t>(I.Opc));
        if (IncludeWidths)
          H.u64(static_cast<uint64_t>(I.W));
        H.u64(static_cast<uint64_t>(I.Rd));
        H.u64(static_cast<uint64_t>(I.Ra));
        H.u64(static_cast<uint64_t>(I.Rb));
        H.u64(I.UseImm ? 1 : 0);
        H.u64(static_cast<uint64_t>(I.Imm));
        H.u64(static_cast<uint64_t>(I.Target));
        H.u64(static_cast<uint64_t>(I.Callee));
      }
    }
  }
}

std::string sampleKey(const Program &P, const RunOptions &Ref,
                      const UarchConfig &Uarch, const SampleSpec &Spec,
                      bool IncludeWidths) {
  Fnv1a H;
  // The dynamic stream is the program text run under the run options.
  // Domain-separate the two key kinds so a warm key can never collide
  // with a stream key of the same program.
  H.u64(IncludeWidths ? 0x57u : 0x77u);
  hashProgram(H, P, IncludeWidths);
  H.u64(Ref.Fuel);
  H.u64(Ref.Machine.MemBytes);
  H.u64(Ref.MaxCallDepth);
  H.u64(Ref.CheckCalleeSaved ? 1 : 0);
  H.u64(Ref.ArgRegs.size());
  for (int64_t A : Ref.ArgRegs)
    H.u64(static_cast<uint64_t>(A));
  // The uarch shapes the checkpoints (cache/predictor geometry) and the
  // plan is nominally uarch-independent, but keying on the full config
  // keeps the artifact a pure function of its inputs.
  H.u64(Uarch.FetchWidth);
  H.u64(Uarch.DecodeWidth);
  H.u64(Uarch.RetireWidth);
  H.u64(Uarch.FrontendDepth);
  H.u64(Uarch.MispredictPenalty);
  H.u64(Uarch.MaxInFlight);
  H.u64(Uarch.IssueWidth);
  H.u64(Uarch.NumIntAlu);
  H.u64(Uarch.NumIntMul);
  H.u64(Uarch.MemPorts);
  H.u64(Uarch.ChooserEntries);
  H.u64(Uarch.GshareEntries);
  H.u64(Uarch.GlobalHistoryBits);
  H.u64(Uarch.BimodalEntries);
  H.u64(Uarch.L1ISizeKB);
  H.u64(Uarch.L1IAssoc);
  H.u64(Uarch.L1ILine);
  H.u64(Uarch.L1IHit);
  H.u64(Uarch.L1DSizeKB);
  H.u64(Uarch.L1DAssoc);
  H.u64(Uarch.L1DLine);
  H.u64(Uarch.L1DHit);
  H.u64(Uarch.L1MissToL2);
  H.u64(Uarch.L2SizeKB);
  H.u64(Uarch.L2Assoc);
  H.u64(Uarch.L2Line);
  H.u64(Uarch.L2Hit);
  H.u64(Uarch.MemFirstChunk);
  H.u64(Uarch.MemInterChunk);
  H.u64(Uarch.MemChunkBytes);
  H.u64(Uarch.MulLatency);
  // Every spec field shapes the plan and/or the capture layout.
  H.u64(Spec.IntervalLen);
  H.u64(Spec.K);
  H.u64(Spec.MaxK);
  H.u64(Spec.WarmupLen);
  H.u64(Spec.CountedLen);
  H.u64(Spec.SamplesPerCluster);
  H.f64(Spec.WarmupFrac);
  H.f64(Spec.ChaseWarmGain);
  H.u64(Spec.ProjectDims);
  H.f64(Spec.TimeWeight);
  H.f64(Spec.CheckpointChaseMin);
  H.u64(Spec.Seed);

  char Buf[2 + 16 + 1];
  std::snprintf(Buf, sizeof Buf, "0x%016llx",
                static_cast<unsigned long long>(H.hash()));
  return Buf;
}

/// The compute-once protocol shared by both maps: first caller of a key
/// becomes the owner and fulfills the promise; everyone else waits on
/// the shared future. The mutex only guards the map — Compute runs
/// unlocked so distinct keys prepare in parallel.
template <typename T>
T getOrComputeIn(std::mutex &M,
                 std::map<std::string, std::shared_future<T>> &Map,
                 const std::string &Key, const std::function<T()> &Compute) {
  std::shared_future<T> Fut;
  std::promise<T> Owner;
  bool IsOwner = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(Key);
    if (It == Map.end()) {
      IsOwner = true;
      Fut = Owner.get_future().share();
      Map.emplace(Key, Fut);
    } else {
      Fut = It->second;
    }
  }
  if (IsOwner) {
    try {
      Owner.set_value(Compute());
    } catch (...) {
      Owner.set_exception(std::current_exception());
    }
  }
  return Fut.get();
}

} // namespace

std::string og::sampleStreamKey(const Program &P, const RunOptions &Ref,
                                const UarchConfig &Uarch,
                                const SampleSpec &Spec) {
  return sampleKey(P, Ref, Uarch, Spec, /*IncludeWidths=*/true);
}

std::string og::sampleWarmKey(const Program &P, const RunOptions &Ref,
                              const UarchConfig &Uarch,
                              const SampleSpec &Spec) {
  return sampleKey(P, Ref, Uarch, Spec, /*IncludeWidths=*/false);
}

SamplePlanCache::ArtifactsPtr
SamplePlanCache::getOrCompute(const std::string &Key,
                              const std::function<ArtifactsPtr()> &Compute) {
  return getOrComputeIn(M, Futures, Key, Compute);
}

SamplePlanCache::StreamEstimatePtr SamplePlanCache::getOrComputeEstimate(
    const std::string &Key,
    const std::function<StreamEstimatePtr()> &Compute) {
  return getOrComputeIn(M, EstFutures, Key, Compute);
}

size_t SamplePlanCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Futures.size();
}

size_t SamplePlanCache::estimateCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return EstFutures.size();
}
