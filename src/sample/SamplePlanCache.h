//===- sample/SamplePlanCache.h - Cross-cell artifact sharing ----*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shares sampled-estimation artifacts (SamplePlan + warm-state
/// checkpoints) across sweep cells that execute the same dynamic
/// instruction stream. In the standard sweep, the seven gating configs
/// collapse to four distinct streams — the scheme only changes what the
/// EnergyModel charges, not what executes — so baseline / hw-sig /
/// hw-size (and vrp / combined-VRP) each pay profiling, clustering and
/// checkpoint capture once instead of per cell.
///
/// Sharing is keyed by a structural hash of everything the artifacts are
/// a function of: the *transformed* program (the dynamic stream is
/// determined by the program text plus the run options), the run
/// options, the uarch config, and the sample spec. Two cells that hash
/// alike would compute bit-identical artifacts anyway, so cache hits
/// cannot change any result — only skip redundant work. This is the
/// AnalysisManager's epoch discipline lifted from (function, analysis)
/// to (workload, scale, stream-class).
///
/// Two key granularities share two artifact kinds:
///
///  - sampleWarmKey() skips instruction widths, and keys the
///    SampleArtifacts (plan + warm checkpoints + architectural
///    checkpoints). Width-only rewrites (VRP's narrowing sets
///    Instruction::W in place and nothing else) preserve control flow
///    and memory addresses, and the plan (basic-block vectors), warm
///    checkpoints (cache tags + branch history), and arch checkpoints
///    (registers + dirty pages + output length — values in the narrowed
///    width's sense) are functions of exactly those — so baseline and
///    VRP cells share one profiling + capture pass even though their
///    binaries differ, and window-parallel replay resumes from the same
///    shared state in every cell of the stream class.
///  - sampleStreamKey() includes widths, and keys the
///    SampleStreamEstimate (the detailed windowed pass). Widths change
///    register values on dead bytes and the histogram's width bins, so
///    the estimate is shared only between cells whose transformed
///    binaries match outright.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SAMPLE_SAMPLEPLANCACHE_H
#define OG_SAMPLE_SAMPLEPLANCACHE_H

#include "sample/SampleRunner.h"

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace og {

struct Program;

/// The cache key for one dynamic instruction stream under one
/// (run-options, uarch, spec) context: a 64-bit FNV-1a over every
/// instruction field of the transformed program, its data segment, and
/// every field of the three configs, rendered as a hex string. Pass the
/// program *after* the cell's software transform — cells share a key
/// exactly when their transformed programs (and contexts) match.
std::string sampleStreamKey(const Program &P, const RunOptions &Ref,
                            const UarchConfig &Uarch, const SampleSpec &Spec);

/// Like sampleStreamKey but blind to Instruction::W, keying artifacts
/// that only depend on control flow and addresses (see the file
/// comment). Sound only for width rewrites that are value-preserving in
/// the narrowed width's sense — which VRP's narrowing is by contract
/// (the output-equivalence oracle tests it); a transform that inserted,
/// removed or reordered instructions changes this key too.
std::string sampleWarmKey(const Program &P, const RunOptions &Ref,
                          const UarchConfig &Uarch, const SampleSpec &Spec);

/// A concurrent compute-once map from key to shared sampled-estimation
/// products: warm-key -> SampleArtifacts, stream-key ->
/// SampleStreamEstimate. The first caller of a key runs \p Compute;
/// concurrent callers of the same key block until it finishes and then
/// share the result (the driver's worker threads hit this when --jobs
/// puts two cells of one stream in flight together). Exceptions from
/// Compute propagate to every waiter. Entries live for the cache's
/// lifetime — one sweep.
class SamplePlanCache {
public:
  using ArtifactsPtr = std::shared_ptr<const SampleArtifacts>;
  using StreamEstimatePtr = std::shared_ptr<const SampleStreamEstimate>;

  ArtifactsPtr getOrCompute(const std::string &Key,
                            const std::function<ArtifactsPtr()> &Compute);

  StreamEstimatePtr
  getOrComputeEstimate(const std::string &Key,
                       const std::function<StreamEstimatePtr()> &Compute);

  /// Number of distinct streams prepared so far.
  size_t size() const;

  /// Number of distinct detailed estimation passes run so far.
  size_t estimateCount() const;

private:
  mutable std::mutex M;
  std::map<std::string, std::shared_future<ArtifactsPtr>> Futures;
  std::map<std::string, std::shared_future<StreamEstimatePtr>> EstFutures;
};

} // namespace og

#endif // OG_SAMPLE_SAMPLEPLANCACHE_H
