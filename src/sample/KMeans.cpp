//===- sample/KMeans.cpp ---------------------------------------------------==//

#include "sample/KMeans.h"

#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace og;

std::vector<size_t> KMeansResult::clusterSizes() const {
  std::vector<size_t> Sizes(K, 0);
  for (int A : Assign)
    ++Sizes[static_cast<size_t>(A)];
  return Sizes;
}

double og::squaredDistance(const std::vector<double> &A,
                           const std::vector<double> &B) {
  double S = 0.0;
  for (size_t I = 0; I < A.size(); ++I) {
    double D = A[I] - B[I];
    S += D * D;
  }
  return S;
}

namespace {

/// Uniform double in [0, 1) from the top 53 bits of one SplitMix64 draw.
double nextUnit(Rng &R) {
  return static_cast<double>(R.next() >> 11) * 0x1.0p-53;
}

double sqDist(const std::vector<double> &A, const std::vector<double> &B) {
  return squaredDistance(A, B);
}

} // namespace

std::vector<std::vector<double>>
og::projectPoints(const std::vector<std::vector<double>> &Points, size_t Dims,
                  uint64_t Seed) {
  if (Points.empty() || Points.front().size() <= Dims)
    return Points;
  const size_t InDims = Points.front().size();
  // One fixed projection matrix per (InDims, Dims, Seed), row-major over
  // input dimensions so every point sees the same map.
  Rng R(Seed);
  const double Scale = std::sqrt(3.0 / static_cast<double>(Dims));
  std::vector<double> Matrix(InDims * Dims);
  for (double &M : Matrix) {
    uint64_t Die = R.below(6);
    M = Die == 0 ? Scale : (Die == 1 ? -Scale : 0.0);
  }
  std::vector<std::vector<double>> Out;
  Out.reserve(Points.size());
  for (const std::vector<double> &P : Points) {
    assert(P.size() == InDims && "points must share one dimension");
    std::vector<double> Q(Dims, 0.0);
    for (size_t I = 0; I < InDims; ++I) {
      const double V = P[I];
      if (V == 0.0)
        continue; // BBVs are sparse; skip the zero mass
      const double *Row = &Matrix[I * Dims];
      for (size_t J = 0; J < Dims; ++J)
        Q[J] += V * Row[J];
    }
    Out.push_back(std::move(Q));
  }
  return Out;
}

KMeansResult og::kmeansCluster(const std::vector<std::vector<double>> &Points,
                               unsigned K, uint64_t Seed, unsigned MaxIters) {
  KMeansResult Res;
  const size_t N = Points.size();
  if (N == 0)
    return Res;
  K = static_cast<unsigned>(std::min<size_t>(K ? K : 1, N));
  Res.K = K;
  const size_t Dims = Points.front().size();
  Rng R(Seed);

  // k-means++ seeding: first centroid uniform, the rest D^2-weighted.
  std::vector<std::vector<double>> C;
  C.reserve(K);
  C.push_back(Points[R.below(N)]);
  std::vector<double> Dist2(N);
  for (unsigned J = 1; J < K; ++J) {
    double Total = 0.0;
    for (size_t I = 0; I < N; ++I) {
      double Best = std::numeric_limits<double>::infinity();
      for (const std::vector<double> &Cj : C)
        Best = std::min(Best, sqDist(Points[I], Cj));
      Dist2[I] = Best;
      Total += Best;
    }
    size_t Pick = 0;
    if (Total > 0.0) {
      // Walk the cumulative mass; lands on a point with Dist2 > 0.
      double Target = nextUnit(R) * Total;
      double Acc = 0.0;
      for (size_t I = 0; I < N; ++I) {
        Acc += Dist2[I];
        if (Target < Acc) {
          Pick = I;
          break;
        }
      }
    } else {
      // All points coincide with some centroid; any choice is equal.
      Pick = R.below(N);
    }
    C.push_back(Points[Pick]);
  }

  // Lloyd iterations with smallest-index tie-breaks and farthest-point
  // reseeding for emptied clusters; stops when assignments fixpoint.
  Res.Assign.assign(N, -1);
  std::vector<size_t> Count(K);
  std::vector<std::vector<double>> Sum(K, std::vector<double>(Dims));
  for (unsigned Iter = 0; Iter < MaxIters; ++Iter) {
    bool Changed = false;
    for (size_t I = 0; I < N; ++I) {
      int Best = 0;
      double BestD = sqDist(Points[I], C[0]);
      for (unsigned J = 1; J < K; ++J) {
        double D = sqDist(Points[I], C[J]);
        if (D < BestD) {
          BestD = D;
          Best = static_cast<int>(J);
        }
      }
      if (Res.Assign[I] != Best) {
        Res.Assign[I] = Best;
        Changed = true;
      }
    }
    if (!Changed)
      break;

    for (unsigned J = 0; J < K; ++J) {
      Count[J] = 0;
      std::fill(Sum[J].begin(), Sum[J].end(), 0.0);
    }
    for (size_t I = 0; I < N; ++I) {
      unsigned J = static_cast<unsigned>(Res.Assign[I]);
      ++Count[J];
      for (size_t D = 0; D < Dims; ++D)
        Sum[J][D] += Points[I][D];
    }
    for (unsigned J = 0; J < K; ++J) {
      if (Count[J] == 0) {
        // Reseed an emptied cluster at the point farthest from its
        // centroid (deterministic: smallest index wins ties).
        size_t Far = 0;
        double FarD = -1.0;
        for (size_t I = 0; I < N; ++I) {
          double D = sqDist(Points[I], C[static_cast<size_t>(Res.Assign[I])]);
          if (D > FarD) {
            FarD = D;
            Far = I;
          }
        }
        C[J] = Points[Far];
        continue;
      }
      for (size_t D = 0; D < Dims; ++D)
        C[J][D] = Sum[J][D] / static_cast<double>(Count[J]);
    }
  }

  Res.Centroids = std::move(C);
  Res.Inertia = 0.0;
  for (size_t I = 0; I < N; ++I)
    Res.Inertia +=
        sqDist(Points[I], Res.Centroids[static_cast<size_t>(Res.Assign[I])]);
  return Res;
}

double og::bicScore(const std::vector<std::vector<double>> &Points,
                    const KMeansResult &R) {
  // Spherical-Gaussian BIC (Pelleg & Moore's X-means formulation, the one
  // SimPoint uses): log-likelihood of the clustering minus a
  // (parameters/2)*log(n) complexity penalty.
  const double N = static_cast<double>(Points.size());
  const double D = Points.empty() ? 1.0
                                  : static_cast<double>(Points.front().size());
  const double K = static_cast<double>(R.K);
  if (N <= K)
    return -std::numeric_limits<double>::infinity();
  // Variance MLE; clamp so a perfect clustering does not produce log(0).
  double Var = R.Inertia / (D * (N - K));
  Var = std::max(Var, 1e-12);
  std::vector<size_t> Sizes = R.clusterSizes();
  double LogLik = 0.0;
  for (size_t Nc : Sizes)
    if (Nc > 0)
      LogLik += static_cast<double>(Nc) * std::log(static_cast<double>(Nc) / N);
  LogLik -= N * D / 2.0 * std::log(2.0 * 3.14159265358979323846 * Var);
  LogLik -= D * (N - K) / 2.0;
  const double NumParams = K * (D + 1.0);
  return LogLik - NumParams / 2.0 * std::log(N);
}

unsigned og::pickK(const std::vector<std::vector<double>> &Points,
                   unsigned MaxK, uint64_t Seed, std::vector<double> *Scores,
                   double Threshold, KMeansResult *Winner) {
  const size_t N = Points.size();
  if (N == 0)
    return 0;
  MaxK = static_cast<unsigned>(std::min<size_t>(MaxK ? MaxK : 1, N));
  std::vector<KMeansResult> Runs(MaxK);
  std::vector<double> Bic(MaxK);
  for (unsigned K = 1; K <= MaxK; ++K) {
    Runs[K - 1] = kmeansCluster(Points, K, Seed);
    Bic[K - 1] = bicScore(Points, Runs[K - 1]);
  }
  if (Scores)
    *Scores = Bic;
  auto Choose = [&](unsigned K) {
    if (Winner)
      *Winner = std::move(Runs[K - 1]);
    return K;
  };
  double Lo = Bic[0], Hi = Bic[0];
  for (double B : Bic) {
    if (std::isfinite(B)) {
      Lo = std::min(Lo, B);
      Hi = std::max(Hi, B);
    }
  }
  if (!(Hi > Lo)) // one candidate, or a flat score curve: simplest wins
    return Choose(1);
  const double Cut = Lo + Threshold * (Hi - Lo);
  for (unsigned K = 1; K <= MaxK; ++K)
    if (Bic[K - 1] >= Cut)
      return Choose(K);
  return Choose(MaxK);
}
