//===- sample/SampleRunner.h - Phase-sampled detailed simulation -*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error-bounded sampled estimation of the detailed (OoO timing + power)
/// simulation from a handful of representative execution phases, in three
/// steps:
///
///  1. Profile: one functional run with an IntervalProfiler sink slices
///     execution into fixed-length intervals and records per-interval
///     basic-block vectors (and, as a byproduct, the exact functional
///     stats and output stream).
///  2. Plan: normalized BBVs are projected and clustered with seeded
///     k-means++ (k fixed or BIC-picked); each cluster elects the member
///     interval closest to its centroid as representative and weighs it
///     by the cluster's share of dynamic instructions.
///  3. Estimate: a second functional pass fast-forwards at no-sink speed
///     (sim/ExecEngine.h windowed mode) and feeds the OooCore+EnergyModel
///     stack only inside the representative intervals — each preceded by
///     a warm-up stretch that is simulated but not counted — then scales
///     the per-cluster stat/energy deltas by the cluster weights into a
///     whole-run UarchStats/EnergyReport estimate.
///
/// The detailed stack only ever sees K*(interval+warm-up) instructions,
/// so estimation cost approaches the bare-interpreter floor while the
/// estimate tracks the exact run within the intra-cluster homogeneity the
/// plan reports (Dispersion). Functional quantities (DynInsts, output,
/// block counts) stay exact: both passes execute every instruction.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SAMPLE_SAMPLERUNNER_H
#define OG_SAMPLE_SAMPLERUNNER_H

#include "power/ActivityCounts.h"
#include "power/Report.h"
#include "sample/IntervalProfiler.h"
#include "sim/ExecEngine.h"
#include "support/Hash.h"
#include "uarch/Core.h"

#include <cstdint>
#include <vector>

namespace og {

/// Configuration of sampled estimation. Default-constructed = disabled
/// (exact detailed simulation).
struct SampleSpec {
  /// Interval length in dynamic instructions; 0 disables sampling.
  uint64_t IntervalLen = 0;
  /// Cluster count; 0 picks k automatically: BIC over 1..MaxK for the
  /// phase count, raised to a coverage floor of one cluster per 16
  /// intervals (capped at 24) on long runs.
  unsigned K = 0;
  unsigned MaxK = 8;
  /// Detailed-but-uncounted instructions simulated directly before each
  /// representative interval (settles pipeline/scheduler state).
  uint64_t WarmupLen = 200;
  /// Measuring budget per cluster, split across its sampled members:
  /// each sample window measures ~CountedLen / SamplesPerCluster
  /// instructions (clamped to the interval) and the tails rejoin the
  /// fast-forward. 0 measures whole intervals. Sub-interval measuring
  /// trades a little per-window variance for fewer detailed instructions
  /// — the dominant cost once warming is cheap.
  uint64_t CountedLen = 1400;
  /// Detailed samples per cluster. The centroid-closest member is a
  /// faithful representative only when the cluster is homogeneous in
  /// *performance*; clusters whose members share a BBV but differ in
  /// data-dependent behavior (hit rates, dependence chains) make a
  /// single representative a lottery. Averaging a few evenly-spaced
  /// members bounds that variance at no extra measuring budget (the
  /// budget is split, not multiplied).
  unsigned SamplesPerCluster = 3;
  /// Functional-warming shadow budget as a fraction of the run, split
  /// evenly across the plan's windows: ahead of its detailed warm-up,
  /// each window gets up to WarmupFrac * total / K instructions of
  /// cache/branch-predictor warming (OooCore::warmOnly over the engine's
  /// light records), clamped to the gap behind the previous window.
  /// Cold structure state at a window entry biases every window by a
  /// roughly constant cycle cost — the bias scales with run length over
  /// interval length, so a run-proportional warming budget keeps it
  /// bounded at a fraction of detailed-simulation price.
  double WarmupFrac = 0.05;
  /// Chase-adaptive warming: the effective shadow budget fraction is
  /// WarmupFrac + ChaseWarmGain * (plan pointer-chase fraction), capped
  /// at 1.0. Pointer-chasing workloads serialize their misses, so their
  /// cycles depend on deep cache history that short shadows cannot
  /// rebuild — the profile's chase fraction is a reliable detector
  /// (list/graph kernels score ~0.1+, array/table kernels ~0), and
  /// paying for long warming only there keeps everyone else fast.
  double ChaseWarmGain = 6.0;
  /// Projection dimensions for clustering (sample/KMeans.h).
  size_t ProjectDims = 16;
  /// Weight of the temporal feature appended to each (projected) BBV:
  /// interval position scaled to [0, TimeWeight]. Code signatures alone
  /// miss data-dependent drift — the same loop gets slower as a hash
  /// table fills — so clustering also stratifies by position, turning
  /// constant-BBV stretches into contiguous time segments whose midpoint
  /// representative tracks the segment mean. 0 restores pure-BBV
  /// SimPoint clustering.
  double TimeWeight = 0.5;
  /// Per-stream byte budget for the architectural checkpoints
  /// (ArchCheckpoint below) captured alongside the warm-state ones.
  /// Register files are negligible; the budget really bounds the
  /// dirty-page memory deltas, which scale with how much of memory the
  /// run touches between windows. When the running capture size would
  /// exceed the budget, prepareSampled abandons the architectural
  /// capture (warm-state checkpoints are kept), flags the artifacts
  /// (SampleArtifacts::ArchBudgetExceeded), and estimation falls back
  /// to classic whole-stream fast-forward. 0 disables architectural
  /// capture outright.
  uint64_t ArchCheckpointMaxBytes = 64ull << 20;
  /// Clustering/projection seed. Fixed by default so a spec is fully
  /// deterministic; sweeps inherit byte-identical serial-vs-parallel
  /// reports for free.
  uint64_t Seed = 0x0A4E5EEDull;

  bool enabled() const { return IntervalLen > 0; }
};

/// Folds every SampleSpec field into \p H, in declaration order. Content
/// keys (sample/SamplePlanCache.h, service/CellKey.h) depend on this; a
/// new field added above MUST be folded here too.
inline void hashSampleSpec(Fnv1a &H, const SampleSpec &S) {
  H.u64(S.IntervalLen);
  H.u64(S.K);
  H.u64(S.MaxK);
  H.u64(S.WarmupLen);
  H.u64(S.CountedLen);
  H.u64(S.SamplesPerCluster);
  H.f64(S.WarmupFrac);
  H.f64(S.ChaseWarmGain);
  H.u64(S.ProjectDims);
  H.f64(S.TimeWeight);
  H.u64(S.ArchCheckpointMaxBytes);
  H.u64(S.Seed);
}

/// Granularity of the dirty-memory tracking behind ArchDelta. A page is
/// the unit of capture (whole pages are snapshotted, even for one dirty
/// byte) and of replay splicing.
constexpr uint64_t ArchPageBytes = 4096;

/// Dirty-page memory delta between two consecutive checkpoint indices:
/// full images of every page at least one store touched in the stretch,
/// ascending by page index, concatenated in Bytes. The final page of a
/// machine whose memory size is not page-aligned is clamped — its image
/// is memSize - page * ArchPageBytes bytes long.
struct ArchDelta {
  std::vector<uint32_t> Pages;
  std::vector<uint8_t> Bytes;
};

/// Architectural state captured at one planned window's warm-start
/// boundary. State is the registers/frames/position snapshot the engine
/// resumes from (sim/ExecEngine.h ArchState); Delta holds the memory
/// pages dirtied since the *previous* checkpoint (since run start for
/// the first), so materializing window j's memory means: fresh machine,
/// install the data segment, apply deltas 0..j in order. Replaying a
/// contiguous chunk of windows applies each delta exactly once — the
/// chain never re-reads earlier checkpoints.
struct ArchCheckpoint {
  ArchState State;
  ArchDelta Delta;
};

/// A clustering of one profiled run into representative intervals.
struct SamplePlan {
  uint64_t IntervalLen = 0;
  uint64_t TotalInsts = 0;
  unsigned K = 0;
  std::vector<uint64_t> IntervalInsts; ///< per-interval lengths
  std::vector<int> Assign;             ///< interval -> cluster
  std::vector<uint32_t> Reps;          ///< cluster -> representative interval
  /// Per cluster: the member intervals simulated in detail (ascending;
  /// SamplesPerCluster evenly-spaced members, always including Reps[c]).
  std::vector<std::vector<uint32_t>> Samples;
  std::vector<double> Weights;         ///< cluster -> dyn-inst share
  /// Weighted mean distance of member BBVs to their centroid (projected,
  /// L1-normalized space). A homogeneity proxy reported as the plan's
  /// expected-error indicator: 0 means every interval in each cluster is
  /// BBV-identical to its representative.
  double Dispersion = 0.0;
  /// Pointer-chase fraction of the profiled run (chasing loads per
  /// instruction); drives the adaptive warming budget.
  double ChaseFrac = 0.0;

  size_t numIntervals() const { return IntervalInsts.size(); }
};

/// Clusters \p Prof's BBVs into a plan under \p Spec (call after
/// Prof.finish()). Requires at least one recorded interval.
SamplePlan makeSamplePlan(const IntervalProfiler &Prof,
                          const SampleSpec &Spec);

/// What a sampled estimation run produces.
struct SampleEstimate {
  /// Weighted whole-run estimates. Report.Uarch == Uarch; Insts is exact
  /// by construction (cluster weights sum to the run length).
  UarchStats Uarch;
  EnergyReport Report;
  /// Exact functional result of the estimation pass (status, stats,
  /// output) — identical to an unsampled run of the same options.
  RunResult Run;
  SamplePlan Plan;
  /// Instructions fed to the detailed stack (warm-up included) — the
  /// sampled fraction is DetailedInsts / Plan.TotalInsts.
  uint64_t DetailedInsts = 0;
  /// Whether the detailed pass replayed from architectural checkpoints
  /// (copied from SampleStreamEstimate::Replayed).
  bool Replayed = false;
};

/// Everything reusable across estimation runs of one dynamic instruction
/// stream: the plan, plus one warm-state checkpoint per planned window,
/// captured at the window's warm-start index during a single
/// full-history warming pass, plus (budget permitting) one architectural
/// checkpoint per window from the same pass. Checkpoints holds exactly
/// one entry per planned window, in window order; ArchCheckpoints is
/// either empty (budget exceeded or capture disabled — estimation
/// fast-forwards classically) or parallel to Checkpoints.
///
/// An artifact is a pure function of (stream, uarch, spec) — estimating
/// from a shared artifact is bit-identical to estimating from a freshly
/// prepared one, which is what lets runSweep share artifacts across cells
/// whose software transform leaves the stream unchanged (see
/// sample/SamplePlanCache.h).
struct SampleArtifacts {
  SamplePlan Plan;
  std::vector<CoreWarmState> Checkpoints;
  /// Per-window architectural resume states + dirty-page delta chain;
  /// empty when over budget or disabled (see ArchBudgetExceeded).
  std::vector<ArchCheckpoint> ArchCheckpoints;
  /// Approximate byte footprint of ArchCheckpoints (delta payloads plus a
  /// fixed per-checkpoint overhead) — what the capture budget metered.
  uint64_t ArchBytes = 0;
  /// True when architectural capture started but blew through
  /// SampleSpec::ArchCheckpointMaxBytes; the counted fallback signal
  /// (distinct from capture never being attempted with a 0 budget).
  bool ArchBudgetExceeded = false;
  /// Exact basic-block profile of the profiled run (ExecStats::BlockCounts
  /// of the light full-window pass) — free here, and the seed for
  /// sim/Superblock.h plans. Kept as raw counts rather than a formed
  /// SuperblockPlan because a plan is tied to one DecodedProgram instance,
  /// while artifacts are shared across cells that each decode their own.
  std::vector<std::vector<uint64_t>> BlockProfile;
};

/// The scheme-independent part of a sampled estimation: everything a
/// detailed windowed pass produces before a gating scheme is applied.
/// The detailed stack runs once per dynamic stream with an
/// ActivityRecorder sink; any (scheme, coefficients) cell then derives
/// its EnergyReport from the weighted histogram with
/// deriveSampleEstimate() — that is the "single-pass" in single-pass
/// sampled sweeps (baseline / hw-sig / hw-size share one of these, as do
/// vrp / combined-VRP).
struct SampleStreamEstimate {
  /// Weighted whole-run timing estimate (rounded once, here, so every
  /// derived cell reports identical counters).
  UarchStats Uarch;
  /// Weighted whole-run activity histogram (window deltas scaled by the
  /// same post-stratified factors as Uarch).
  ActivityCounts Activity;
  /// Exact functional result of the estimation pass.
  RunResult Run;
  SamplePlan Plan;
  uint64_t DetailedInsts = 0;
  /// True when the detailed pass replayed windows from architectural
  /// checkpoints instead of fast-forwarding the whole stream.
  bool Replayed = false;
};

/// Steps 1-2 (+ checkpoint capture): profile \p Ref at light-record cost
/// (also validating it halts), cluster into a plan, and run one more
/// light pass capturing a CoreWarmState — and, within
/// Spec.ArchCheckpointMaxBytes, an ArchCheckpoint — at each planned
/// window's warm-start index. Throws std::runtime_error if the program
/// does not halt under \p Ref.
SampleArtifacts prepareSampled(const DecodedProgram &DP, const RunOptions &Ref,
                               const UarchConfig &Uarch,
                               const SampleSpec &Spec);

/// How runSampledStream executes the detailed pass. Neither knob can
/// change the estimate: window replay, forced fast-forward, and every
/// WindowJobs value produce bit-identical SampleStreamEstimates (tested),
/// so none of this participates in content keys.
struct SampleRunPolicy {
  /// Worker threads for window-parallel replay; 0/1 replay serially on
  /// the calling thread. Ignored (with no effect on results) when the
  /// artifacts carry no architectural checkpoints.
  unsigned WindowJobs = 1;
  /// Diagnostic: fast-forward the whole stream even when architectural
  /// checkpoints would allow replay. Window-entry registers are still
  /// injected from the checkpoints, which is what keeps the two modes
  /// bit-identical where the binaries' dead register bytes diverge.
  bool ForceFastForward = false;
};

/// Step 3, scheme-free: detailed in-window simulation under prepared
/// artifacts, recording the activity histogram instead of charging a
/// scheme's energy. \p Ref must run the same instruction stream the
/// artifacts were prepared from (same functional behavior — width-only
/// rewrites qualify); Ref.Sink is ignored. With architectural
/// checkpoints present the windows *replay*: each one materializes its
/// machine state from the checkpoint chain and executes only its own
/// stretch, independently — O(windows) detailed-pass cost instead of
/// O(stream), and embarrassingly parallel under Policy.WindowJobs. The
/// exact functional result still comes from one full-speed (no-sink,
/// superblock-fused) pass. Without them it fast-forwards classically,
/// restoring warm state at each window.
SampleStreamEstimate
runSampledStream(const DecodedProgram &DP, const RunOptions &Ref,
                 const UarchConfig &Uarch, const SampleArtifacts &Art,
                 const SampleSpec &Spec, const SampleRunPolicy &Policy = {});

/// Plan-level variant: fast-forward + in-window detailed simulation with
/// optional warm-state restores and no architectural replay. \p
/// Checkpoints, when given, must hold one CoreWarmState per planned
/// window (from prepareSampled on the same stream/spec); windows then
/// restore warm state instead of running warming shadows — exactly
/// equivalent to a full-prefix shadow, at zero per-window cost.
SampleStreamEstimate
runSampledStream(const DecodedProgram &DP, const RunOptions &Ref,
                 const UarchConfig &Uarch, const SamplePlan &Plan,
                 const SampleSpec &Spec,
                 const std::vector<CoreWarmState> *Checkpoints = nullptr);

/// Applies one (scheme, coefficients) cell to a stream estimate: derives
/// the per-structure energy from the histogram and adds the per-cycle
/// clock part. Cheap (no simulation), deterministic, and independent of
/// how many other cells derive from the same stream estimate.
SampleEstimate deriveSampleEstimate(const SampleStreamEstimate &Stream,
                                    GatingScheme Scheme,
                                    const EnergyCoefficients &Coeffs);

/// Step 3 for a single cell: runSampledStream + deriveSampleEstimate.
SampleEstimate
runSampled(const DecodedProgram &DP, const RunOptions &Ref,
           const UarchConfig &Uarch, GatingScheme Scheme,
           const EnergyCoefficients &Coeffs, const SampleArtifacts &Art,
           const SampleSpec &Spec, const SampleRunPolicy &Policy = {});

/// Plan-level variant of the above (no architectural replay).
SampleEstimate
runSampled(const DecodedProgram &DP, const RunOptions &Ref,
           const UarchConfig &Uarch, GatingScheme Scheme,
           const EnergyCoefficients &Coeffs, const SamplePlan &Plan,
           const SampleSpec &Spec,
           const std::vector<CoreWarmState> *Checkpoints = nullptr);

/// The full flow: prepareSampled then runSampled — windows replay from
/// the captured checkpoints whenever the byte budget allowed them.
SampleEstimate estimateSampled(const DecodedProgram &DP, const RunOptions &Ref,
                               const UarchConfig &Uarch, GatingScheme Scheme,
                               const EnergyCoefficients &Coeffs,
                               const SampleSpec &Spec,
                               const SampleRunPolicy &Policy = {});

/// Signed relative errors of an estimate against an exact detailed run
/// of the same cell ((est - exact) / exact; 0 when exact is 0).
struct SampleErrors {
  double Energy = 0.0;
  double Cycles = 0.0;
  double Ipc = 0.0;
  double Insts = 0.0;

  /// Largest magnitude across the tracked metrics.
  double maxAbs() const;
};

SampleErrors compareToExact(const SampleEstimate &Est,
                            const EnergyReport &Exact);

} // namespace og

#endif // OG_SAMPLE_SAMPLERUNNER_H
