//===- sample/IntervalProfiler.h - Per-interval BBV collection ---*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling half of phase-aware sampled simulation (SimPoint-style):
/// a batched TraceSink that slices the dynamic instruction stream into
/// fixed-length intervals and records one basic-block vector per
/// interval. The BBV dimension space is DecodedProgram's flat block-slot
/// space (one dense slot per (function, block)), and each executed
/// instruction contributes one count to its block's slot — the
/// instruction-weighted BBV of the SimPoint literature, which makes a
/// vector's L1 mass equal the interval length by construction.
///
/// The profiler is a plain sink: attach it to any run via
/// RunOptions::Sink, then call finish() once so the partial final
/// interval (if the run length is not a multiple of the interval length)
/// is recorded too.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SAMPLE_INTERVALPROFILER_H
#define OG_SAMPLE_INTERVALPROFILER_H

#include "sim/ExecEngine.h"
#include "sim/TraceSink.h"

#include <array>
#include <cstdint>
#include <vector>

namespace og {

/// Slices a run into IntervalLen-instruction intervals and accumulates
/// one instruction-weighted basic-block vector per interval.
class IntervalProfiler final : public TraceSink {
public:
  /// \p DP supplies the flat block-slot space (blockSlot / numBlockSlots)
  /// and must be the decode the profiled run executes. \p IntervalLen is
  /// the interval length in dynamic instructions (> 0).
  IntervalProfiler(const DecodedProgram &DP, uint64_t IntervalLen);

  void onBatch(const DynInst *Batch, size_t N) override;

  /// Records the partial final interval. Call exactly once, after the
  /// profiled run returned; idempotent when the run ended on an interval
  /// boundary (the partial interval is then empty and dropped).
  void finish();

  uint64_t intervalLen() const { return Len; }
  size_t numIntervals() const { return Bbvs.size(); }
  uint64_t totalInsts() const { return Total; }

  /// Raw per-interval BBVs: Bbvs()[i][slot] = instructions interval i
  /// executed inside countedBlocks()[slot]'s block. Every interval sums
  /// to intervalLen() except possibly the last.
  const std::vector<std::vector<uint32_t>> &bbvs() const { return Bbvs; }

  /// Instructions per interval (IntervalLen except possibly the last).
  const std::vector<uint64_t> &intervalInsts() const { return Insts; }

  /// Call-depth buckets appended to each feature vector (instructions
  /// executed at call depth d, d >= NumDepthBuckets-1 clamped into the
  /// last bucket). Programs with few static blocks (small interpreters,
  /// recursive kernels) can have near-identical BBVs across phases that
  /// differ wildly in behavior; where they spend their time in the call
  /// tree is the signature that separates those phases.
  static constexpr size_t NumDepthBuckets = 16;

  /// Per-interval depth-bucket counts, parallel to bbvs().
  const std::vector<std::array<uint32_t, NumDepthBuckets>> &depths() const {
    return Depths;
  }

  /// Per-interval pointer-chase counts: loads whose address base register
  /// was last written by another load. Phases with identical block
  /// vectors and even identical miss counts can still differ several-fold
  /// in cycles when one overlaps its misses and the other serializes them
  /// behind a pointer chain; this is the cheap functional signal that
  /// separates the two.
  const std::vector<uint32_t> &chases() const { return Chases; }

  /// L1-normalized feature vectors as doubles: the BBV slots (summing to
  /// 1, so intervals of different lengths — the final partial one —
  /// compare by shape, not mass) followed by the call-depth bucket
  /// fractions. This is the clustering input (sample/KMeans.h).
  std::vector<std::vector<double>> normalizedBbvs() const;

private:
  void flushInterval();

  const DecodedProgram *DP;
  uint64_t Len;
  uint64_t InInterval = 0; ///< instructions accumulated into Cur
  uint64_t Total = 0;
  uint32_t CallDepth = 0;
  uint32_t CurChase = 0;
  std::vector<uint32_t> Cur; ///< per-slot counts of the open interval
  std::array<uint32_t, NumDepthBuckets> CurDepth{};
  std::vector<bool> LoadWrote; ///< reg -> last writer was a load
  std::vector<std::vector<uint32_t>> Bbvs;
  std::vector<std::array<uint32_t, NumDepthBuckets>> Depths;
  std::vector<uint32_t> Chases;
  std::vector<uint64_t> Insts;
};

} // namespace og

#endif // OG_SAMPLE_INTERVALPROFILER_H
