//===- sample/SampleRunner.cpp ---------------------------------------------==//

#include "sample/SampleRunner.h"

#include "sample/KMeans.h"
#include "sim/Superblock.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

using namespace og;

SamplePlan og::makeSamplePlan(const IntervalProfiler &Prof,
                              const SampleSpec &Spec) {
  assert(Spec.enabled() && "sampling disabled in spec");
  assert(Prof.numIntervals() > 0 && "profile recorded no intervals");

  SamplePlan Plan;
  Plan.IntervalLen = Prof.intervalLen();
  Plan.TotalInsts = Prof.totalInsts();
  Plan.IntervalInsts = Prof.intervalInsts();
  {
    uint64_t Chase = 0;
    for (uint32_t C : Prof.chases())
      Chase += C;
    Plan.ChaseFrac =
        static_cast<double>(Chase) / static_cast<double>(Plan.TotalInsts);
  }

  std::vector<std::vector<double>> Points =
      projectPoints(Prof.normalizedBbvs(), Spec.ProjectDims, Spec.Seed);
  const size_t N = Points.size();
  if (Spec.TimeWeight > 0.0) {
    // Temporal augmentation: one extra coordinate walking 0..TimeWeight
    // across the run (see SampleSpec::TimeWeight).
    for (size_t I = 0; I < N; ++I)
      Points[I].push_back(N > 1 ? Spec.TimeWeight * static_cast<double>(I) /
                                      static_cast<double>(N - 1)
                                : 0.0);
  }

  // Fixed k when the spec names one. Otherwise BIC picks the phase
  // count, and a coverage floor of one cluster per 16 intervals (capped)
  // adds sampling capacity for long runs: their residual error is
  // within-phase variance, which more strata shrink even when the BIC
  // curve is happy with a handful of phases.
  unsigned K;
  KMeansResult Clusters;
  if (Spec.K) {
    K = Spec.K;
    Clusters = kmeansCluster(Points, K, Spec.Seed);
  } else {
    KMeansResult BicWinner;
    const unsigned Bic =
        pickK(Points, Spec.MaxK, Spec.Seed, nullptr, 0.9, &BicWinner);
    const unsigned Coverage = std::min<unsigned>(
        std::max<unsigned>(static_cast<unsigned>(N / 16), 1), 24);
    K = std::max(Bic, Coverage);
    // Reuse the BIC winner when the coverage floor did not raise k.
    Clusters = K == Bic ? std::move(BicWinner)
                        : kmeansCluster(Points, K, Spec.Seed);
  }

  // Elect per-cluster representatives (member closest to the centroid,
  // smallest index on ties) and the dynamic-instruction weights.
  // Clusters that ended up empty are dropped — they carry no weight and
  // would have nothing to represent.
  std::vector<int> Remap(Clusters.K, -1);
  std::vector<std::vector<uint32_t>> MemberSets;
  std::vector<size_t> RepPositions;
  std::vector<double> ClusterDisp; ///< weighted mean dist to centroid
  for (unsigned C = 0; C < Clusters.K; ++C) {
    uint32_t Rep = 0;
    size_t RepPos = 0;
    double RepD = std::numeric_limits<double>::infinity();
    uint64_t Insts = 0;
    double Disp = 0.0;
    std::vector<uint32_t> Members;
    for (size_t I = 0; I < N; ++I) {
      if (Clusters.Assign[I] != static_cast<int>(C))
        continue;
      Insts += Plan.IntervalInsts[I];
      Members.push_back(static_cast<uint32_t>(I));
      double D = squaredDistance(Points[I], Clusters.Centroids[C]);
      Disp += static_cast<double>(Plan.IntervalInsts[I]) * std::sqrt(D);
      if (D < RepD) {
        RepD = D;
        Rep = static_cast<uint32_t>(I);
        RepPos = Members.size() - 1;
      }
    }
    if (Insts == 0)
      continue;
    Remap[C] = static_cast<int>(Plan.Reps.size());
    Plan.Reps.push_back(Rep);
    Plan.Weights.push_back(static_cast<double>(Insts) /
                           static_cast<double>(Plan.TotalInsts));
    MemberSets.push_back(std::move(Members));
    RepPositions.push_back(RepPos);
    ClusterDisp.push_back(Disp / static_cast<double>(Plan.TotalInsts));
  }
  Plan.K = static_cast<unsigned>(Plan.Reps.size());

  // Sample allocation (Neyman-style): every cluster gets its
  // representative; the remaining budget of (SamplesPerCluster - 1) * K
  // extra samples goes to clusters in proportion to their dispersion,
  // where single-rep estimation is least trustworthy (phase ramps,
  // drifting behavior — the temporal feature gives even BBV-identical
  // drift stretches a usable spread). A plan with no dispersion signal
  // at all spreads the budget evenly.
  {
    const size_t Budget =
        static_cast<size_t>(std::max(Spec.SamplesPerCluster, 1u) - 1) *
        Plan.K;
    double DispTotal = 0.0;
    for (double D : ClusterDisp)
      DispTotal += D;
    std::vector<size_t> Extra(Plan.K, 0);
    if (DispTotal > 0.0) {
      // Largest-remainder apportionment, deterministic tie-break by
      // cluster index.
      std::vector<std::pair<double, unsigned>> Rema;
      size_t Assigned = 0;
      for (unsigned C = 0; C < Plan.K; ++C) {
        double Share =
            static_cast<double>(Budget) * ClusterDisp[C] / DispTotal;
        Extra[C] = static_cast<size_t>(Share);
        Assigned += Extra[C];
        Rema.push_back({Share - static_cast<double>(Extra[C]), C});
      }
      std::sort(Rema.begin(), Rema.end(), [](const auto &A, const auto &B) {
        if (A.first != B.first)
          return A.first > B.first;
        return A.second < B.second;
      });
      for (size_t J = 0; J < Rema.size() && Assigned < Budget;
           ++J, ++Assigned)
        ++Extra[Rema[J].second];
    } else if (Plan.K) {
      for (unsigned C = 0; C < Plan.K; ++C)
        Extra[C] = Budget / Plan.K;
    }

    for (unsigned C = 0; C < Plan.K; ++C) {
      const std::vector<uint32_t> &Members = MemberSets[C];
      const size_t M = Members.size();
      const size_t R = std::min<size_t>(1 + Extra[C], M);
      // Evenly-spaced member picks (stratified within the cluster), with
      // the pick nearest the representative's slot replaced by the
      // representative itself.
      std::vector<uint32_t> Samples;
      size_t Nearest = 0;
      size_t NearestDist = M;
      for (size_t J = 0; J < R; ++J) {
        const size_t Pos = (2 * J + 1) * M / (2 * R);
        Samples.push_back(Members[Pos]);
        const size_t Dist = Pos > RepPositions[C] ? Pos - RepPositions[C]
                                                  : RepPositions[C] - Pos;
        if (Dist < NearestDist) {
          NearestDist = Dist;
          Nearest = J;
        }
      }
      Samples[Nearest] = Plan.Reps[C];
      std::sort(Samples.begin(), Samples.end());
      Samples.erase(std::unique(Samples.begin(), Samples.end()),
                    Samples.end());
      Plan.Samples.push_back(std::move(Samples));
    }
  }
  Plan.Assign.resize(N);
  for (size_t I = 0; I < N; ++I)
    Plan.Assign[I] = Remap[static_cast<size_t>(Clusters.Assign[I])];

  // Homogeneity proxy: instruction-weighted mean distance of every
  // interval to its cluster's representative vector.
  double Disp = 0.0;
  for (size_t I = 0; I < N; ++I) {
    const uint32_t Rep = Plan.Reps[static_cast<size_t>(Plan.Assign[I])];
    Disp += static_cast<double>(Plan.IntervalInsts[I]) /
            static_cast<double>(Plan.TotalInsts) *
            std::sqrt(squaredDistance(Points[I], Points[Rep]));
  }
  Plan.Dispersion = Disp;
  return Plan;
}

namespace {

/// Mirrors UarchStats with double-precision accumulators so per-cluster
/// deltas can be scaled by fractional weights before the final rounding.
struct ScaledStats {
  double Insts = 0, Cycles = 0, FetchGroups = 0, ICacheMisses = 0,
         DL1Accesses = 0, DL1Misses = 0, L2Accesses = 0, L2Misses = 0,
         Branches = 0, Mispredicts = 0;

  void addScaled(double F, const UarchStats &A, const UarchStats &B) {
    Insts += F * static_cast<double>(B.Insts - A.Insts);
    Cycles += F * static_cast<double>(B.Cycles - A.Cycles);
    FetchGroups += F * static_cast<double>(B.FetchGroups - A.FetchGroups);
    ICacheMisses += F * static_cast<double>(B.ICacheMisses - A.ICacheMisses);
    DL1Accesses += F * static_cast<double>(B.DL1Accesses - A.DL1Accesses);
    DL1Misses += F * static_cast<double>(B.DL1Misses - A.DL1Misses);
    L2Accesses += F * static_cast<double>(B.L2Accesses - A.L2Accesses);
    L2Misses += F * static_cast<double>(B.L2Misses - A.L2Misses);
    Branches += F * static_cast<double>(B.Branches - A.Branches);
    Mispredicts += F * static_cast<double>(B.Mispredicts - A.Mispredicts);
  }

  UarchStats rounded() const {
    auto R = [](double V) { return static_cast<uint64_t>(std::llround(V)); };
    UarchStats S;
    S.Insts = R(Insts);
    S.Cycles = R(Cycles);
    S.FetchGroups = R(FetchGroups);
    S.ICacheMisses = R(ICacheMisses);
    S.DL1Accesses = R(DL1Accesses);
    S.DL1Misses = R(DL1Misses);
    S.L2Accesses = R(L2Accesses);
    S.L2Misses = R(L2Misses);
    S.Branches = R(Branches);
    S.Mispredicts = R(Mispredicts);
    return S;
  }
};

/// Feeds the in-window trace to one OooCore+ActivityRecorder stack and
/// records per-cluster stat/activity deltas across each window's counted
/// stretch. Each window arrives in three phases: a functional-warming
/// shadow (light records routed to OooCore::warmOnly), a
/// detailed-but-uncounted warm-up, and the counted representative
/// interval bracketed by the stat/activity snapshots. With checkpoints,
/// the shadow phase is empty and each window instead opens by restoring
/// the warm state captured at its warm-start index — equivalent to a
/// full-prefix shadow (the snapshots bracket only the counted stretch,
/// so restoring tables without rewinding counters cancels out of every
/// delta). Recording the scheme-free histogram instead of one scheme's
/// energy is what lets a single detailed pass serve every gating cell of
/// the stream (deriveSampleEstimate).
class WindowEstimator final : public TraceSink {
public:
  struct Win {
    uint64_t Shadow = 0, Warmup = 0, Counted = 0;
    unsigned Cluster = 0;
  };

  WindowEstimator(const UarchConfig &Uarch, std::vector<Win> Windows,
                  const std::vector<CoreWarmState> *Checkpoints = nullptr)
      : Core(Uarch, &Rec), Wins(std::move(Windows)), Ckpt(Checkpoints),
        StatDelta(Wins.size()), CountDelta(Wins.size()) {}

  void onBatch(const DynInst *Batch, size_t N) override {
    Delivered += N;
    while (N > 0) {
      // Always-on (not assert): in a Release build an overrun would
      // silently smear extra instructions into the last window's delta.
      if (Cur >= Wins.size())
        throw std::runtime_error(
            "sampled estimation: trace exceeds the planned windows");
      const Win &W = Wins[Cur];
      if (Ckpt && Into == 0)
        Core.restoreWarmState((*Ckpt)[Cur]);
      if (!CountingStarted && Into >= W.Shadow + W.Warmup) {
        snapStart();
        CountingStarted = true;
      }
      const bool InShadow = Into < W.Shadow;
      const uint64_t Limit = InShadow
                                 ? W.Shadow
                                 : (CountingStarted
                                        ? W.Shadow + W.Warmup + W.Counted
                                        : W.Shadow + W.Warmup);
      const size_t Take =
          static_cast<size_t>(std::min<uint64_t>(N, Limit - Into));
      if (InShadow)
        Core.warmOnly(Batch, Take);
      else
        Core.onBatch(Batch, Take);
      Batch += Take;
      N -= Take;
      Into += Take;
      if (CountingStarted && Into == W.Shadow + W.Warmup + W.Counted) {
        snapEnd(Cur);
        ++Cur;
        Into = 0;
        CountingStarted = false;
      }
    }
  }

  bool allWindowsComplete() const { return Cur == Wins.size(); }
  uint64_t deliveredInsts() const { return Delivered; }

  /// Scales the per-window deltas into the whole-run estimate.
  void estimate(const std::vector<double> &Factors, UarchStats &OutStats,
                ActivityCounts &OutCounts) const {
    assert(Factors.size() == StatDelta.size());
    ScaledStats Acc;
    for (size_t C = 0; C < Factors.size(); ++C) {
      Acc.addScaled(Factors[C], UarchStats(), StatDelta[C]);
      OutCounts.addScaled(Factors[C], ActivityCounts(), CountDelta[C]);
    }
    OutStats = Acc.rounded();
  }

private:
  void snapStart() {
    StatStart = Core.snapshot();
    CountStart = Rec.counts();
  }

  void snapEnd(size_t Window) {
    const UarchStats End = Core.snapshot();
    const UarchStats &A = StatStart;
    UarchStats &D = StatDelta[Window];
    D.Insts += End.Insts - A.Insts;
    D.Cycles += End.Cycles - A.Cycles;
    D.FetchGroups += End.FetchGroups - A.FetchGroups;
    D.ICacheMisses += End.ICacheMisses - A.ICacheMisses;
    D.DL1Accesses += End.DL1Accesses - A.DL1Accesses;
    D.DL1Misses += End.DL1Misses - A.DL1Misses;
    D.L2Accesses += End.L2Accesses - A.L2Accesses;
    D.L2Misses += End.L2Misses - A.L2Misses;
    D.Branches += End.Branches - A.Branches;
    D.Mispredicts += End.Mispredicts - A.Mispredicts;
    CountDelta[Window].addScaled(1.0, CountStart, Rec.counts());
  }

  ActivityRecorder Rec;
  OooCore Core;
  std::vector<Win> Wins;
  const std::vector<CoreWarmState> *Ckpt;
  size_t Cur = 0;
  uint64_t Into = 0;
  uint64_t Delivered = 0;
  bool CountingStarted = false;
  UarchStats StatStart;
  std::vector<UarchStats> StatDelta;
  ActivityCounts CountStart;
  std::vector<ActivityCounts> CountDelta;
};

/// The concrete window layout a plan induces: the engine's trace windows,
/// the estimator's per-window phase lengths, and the post-stratified
/// scaling factors. Derived deterministically from (Plan, Spec), so the
/// capture pass (prepareSampled) and the estimation pass (runSampled)
/// independently compute identical layouts.
struct WindowLayout {
  std::vector<SampleWindow> Engine;
  std::vector<WindowEstimator::Win> Wins;
  std::vector<double> Factors;
};

/// Lays out one window per (cluster, sample), ordered by position in the
/// run. Warm-up is clamped so windows never overlap the run start or
/// each other (a sample directly behind another window keeps its counted
/// stretch and loses warm-up instead). With \p Checkpointed, the warming
/// shadows are dropped entirely — each window's engine range starts at
/// its warm-start index (Begin - Warmup), where prepareSampled captured
/// a CoreWarmState to restore instead.
WindowLayout layoutWindows(const SamplePlan &Plan, const SampleSpec &Spec,
                           bool Checkpointed) {
  if (Plan.K == 0)
    throw std::invalid_argument("sample plan has no clusters");

  // Interval start offsets in dynamic-instruction space.
  std::vector<uint64_t> Starts(Plan.numIntervals());
  uint64_t Off = 0;
  for (size_t I = 0; I < Plan.numIntervals(); ++I) {
    Starts[I] = Off;
    Off += Plan.IntervalInsts[I];
  }

  struct SampleSite {
    uint32_t Interval = 0;
    unsigned Cluster = 0;
  };
  std::vector<SampleSite> Sites;
  for (unsigned C = 0; C < Plan.K; ++C)
    for (uint32_t I : Plan.Samples[C])
      Sites.push_back({I, C});
  std::sort(Sites.begin(), Sites.end(),
            [](const SampleSite &A, const SampleSite &B) {
              return A.Interval < B.Interval;
            });

  // Shadow length per window. Deliberately scaled by K (not the number
  // of sample windows): more samples per cluster must not dilute each
  // window's warming. Chase-heavy plans widen the budget — their cycles
  // depend on cache history no short shadow can rebuild (see
  // SampleSpec::ChaseWarmGain).
  const double ShadowFrac = std::min(
      Spec.WarmupFrac + Spec.ChaseWarmGain * Plan.ChaseFrac, 1.0);
  const uint64_t ShadowTarget =
      Checkpointed ? 0
                   : static_cast<uint64_t>(
                         ShadowFrac * static_cast<double>(Plan.TotalInsts) /
                         static_cast<double>(Plan.K));

  WindowLayout L;
  uint64_t PrevEnd = 0;
  for (const SampleSite &S : Sites) {
    const uint64_t Begin = Starts[S.Interval];
    // Per-sample measuring stretch: the cluster's CountedLen budget
    // split over its samples, clamped to the interval.
    uint64_t Counted = Plan.IntervalInsts[S.Interval];
    if (Spec.CountedLen) {
      // Floor of 700 so heavily-sampled clusters still measure stretches
      // long enough to amortize window-boundary effects.
      const uint64_t Share = std::max<uint64_t>(
          Spec.CountedLen / Plan.Samples[S.Cluster].size(), 700);
      Counted = std::min(Share, Counted);
    }
    const uint64_t End = Begin + Counted;
    // Warm-up prefix, clamped to the gap behind the previous window: the
    // detailed warm-up keeps priority, the cheap warming shadow takes
    // whatever budget remains.
    const uint64_t Gap = Begin - PrevEnd;
    const uint64_t Warmup = std::min(Spec.WarmupLen, Gap);
    const uint64_t Shadow = std::min(ShadowTarget, Gap - Warmup);
    L.Engine.push_back({Begin - Warmup - Shadow, End, Shadow});
    L.Wins.push_back({Shadow, Warmup, Counted, S.Cluster});
    PrevEnd = End;
  }

  // Post-stratified weighting: every interval is represented by the
  // temporally-nearest sample of its own cluster, and each window's
  // counted delta is scaled by (instructions it represents / counted
  // instructions). Inside a heterogeneous cluster this keeps a sample at
  // a phase edge from diluting the mass of the plateau members — each
  // member is accounted by its most-similar sample — and the integer
  // represented-instruction totals keep the Insts estimate exact.
  std::vector<std::vector<size_t>> ClusterWindows(Plan.K);
  for (size_t W = 0; W < Sites.size(); ++W)
    ClusterWindows[Sites[W].Cluster].push_back(W);
  std::vector<uint64_t> Represented(Sites.size(), 0);
  for (size_t I = 0; I < Plan.numIntervals(); ++I) {
    const unsigned C = static_cast<unsigned>(Plan.Assign[I]);
    size_t Best = ClusterWindows[C].front();
    uint64_t BestDist = ~uint64_t(0);
    for (size_t W : ClusterWindows[C]) {
      const uint32_t S = Sites[W].Interval;
      const uint64_t Dist =
          S > I ? static_cast<uint64_t>(S) - I : I - static_cast<uint64_t>(S);
      if (Dist < BestDist) {
        BestDist = Dist;
        Best = W;
      }
    }
    Represented[Best] += Plan.IntervalInsts[I];
  }
  L.Factors.resize(Sites.size());
  for (size_t W = 0; W < Sites.size(); ++W)
    L.Factors[W] = static_cast<double>(Represented[W]) /
                   static_cast<double>(L.Wins[W].Counted);
  return L;
}

/// Drives one OooCore through the full dynamic stream with warmOnly()
/// and snapshots its warm state at each requested stop (ascending
/// dynamic-instruction indices). A stop at index 0 is captured at
/// construction — the pristine core — so the engine's skip of empty
/// windows never loses a capture.
class CheckpointRecorder final : public TraceSink {
public:
  CheckpointRecorder(const UarchConfig &Uarch, std::vector<uint64_t> StopsIn,
                     std::vector<CoreWarmState> &Out)
      : Core(Uarch, nullptr), Stops(std::move(StopsIn)), Out(Out) {
    capturePending();
  }

  void onBatch(const DynInst *Batch, size_t N) override {
    while (N > 0) {
      const uint64_t Until = Next < Stops.size() ? Stops[Next] : ~uint64_t(0);
      const size_t Take =
          static_cast<size_t>(std::min<uint64_t>(N, Until - Seen));
      Core.warmOnly(Batch, Take);
      Batch += Take;
      N -= Take;
      Seen += Take;
      capturePending();
    }
  }

  bool done() const { return Next == Stops.size(); }

private:
  void capturePending() {
    while (Next < Stops.size() && Stops[Next] == Seen) {
      Out.push_back(Core.warmState());
      ++Next;
    }
  }

  OooCore Core;
  std::vector<uint64_t> Stops;
  std::vector<CoreWarmState> &Out;
  size_t Next = 0;
  uint64_t Seen = 0;
};

} // namespace

SampleArtifacts og::prepareSampled(const DecodedProgram &DP,
                                   const RunOptions &Ref,
                                   const UarchConfig &Uarch,
                                   const SampleSpec &Spec) {
  // Profile at light-record cost: one full-length light window feeds the
  // profiler everything it reads (Func/Block/I/WroteDest) without the
  // register-file reads a full record pays for.
  IntervalProfiler Prof(DP, Spec.IntervalLen);
  RunOptions ProfOpts = Ref;
  ProfOpts.Sink = &Prof;
  RunResult ProfRun =
      runProgramWindowed(DP, ProfOpts, {{0, ~uint64_t(0), ~uint64_t(0)}});
  Prof.finish();
  if (ProfRun.Status != RunStatus::Halted)
    throw std::runtime_error("sampled estimation: profiled run did not halt");

  SampleArtifacts Art;
  Art.Plan = makeSamplePlan(Prof, Spec);
  Art.BlockProfile = std::move(ProfRun.Stats.BlockCounts);

  // Checkpoint capture pays about one more light run and replaces every
  // cell's warming shadows — worth it exactly where chase-adaptive
  // shadows get long (see SampleSpec::CheckpointChaseMin).
  if (Art.Plan.ChaseFrac < Spec.CheckpointChaseMin)
    return Art;

  const WindowLayout L = layoutWindows(Art.Plan, Spec, /*Checkpointed=*/true);
  std::vector<uint64_t> Stops;
  Stops.reserve(L.Engine.size());
  for (const SampleWindow &W : L.Engine)
    Stops.push_back(W.Begin); // == counted begin - warm-up
  const uint64_t Last = Stops.back();

  Art.Checkpoints.reserve(Stops.size());
  CheckpointRecorder Recorder(Uarch, std::move(Stops), Art.Checkpoints);
  if (Last > 0) {
    RunOptions CapOpts = Ref;
    CapOpts.Sink = &Recorder;
    runProgramWindowed(DP, CapOpts, {{0, Last, Last}});
  }
  if (!Recorder.done())
    throw std::runtime_error(
        "sampled estimation: checkpoint capture ended before the last "
        "planned window");
  return Art;
}

SampleStreamEstimate
og::runSampledStream(const DecodedProgram &DP, const RunOptions &Ref,
                     const UarchConfig &Uarch, const SamplePlan &Plan,
                     const SampleSpec &Spec,
                     const std::vector<CoreWarmState> *Checkpoints) {
  if (Checkpoints && Checkpoints->empty())
    Checkpoints = nullptr;
  WindowLayout L = layoutWindows(Plan, Spec, Checkpoints != nullptr);
  if (Checkpoints && Checkpoints->size() != L.Engine.size())
    throw std::invalid_argument(
        "sampled estimation: checkpoint count does not match the plan's "
        "windows (artifacts prepared under a different plan or spec?)");

  WindowEstimator Estimator(Uarch, std::move(L.Wins), Checkpoints);
  RunOptions Opts = Ref;
  Opts.Sink = &Estimator;

  SampleStreamEstimate Stream;
  Stream.Plan = Plan;
  Stream.Run = runProgramWindowed(DP, Opts, L.Engine);
  Stream.DetailedInsts = Estimator.deliveredInsts();
  // Always-on (not assert): an incomplete window set would silently
  // scale zero deltas into the estimate in Release builds.
  if (!Estimator.allWindowsComplete())
    throw std::runtime_error(
        "sampled estimation: run ended before the planned windows");

  Estimator.estimate(L.Factors, Stream.Uarch, Stream.Activity);
  return Stream;
}

SampleEstimate og::deriveSampleEstimate(const SampleStreamEstimate &Stream,
                                        GatingScheme Scheme,
                                        const EnergyCoefficients &Coeffs) {
  SampleEstimate Est;
  Est.Uarch = Stream.Uarch;
  Est.Run = Stream.Run;
  Est.Plan = Stream.Plan;
  Est.DetailedInsts = Stream.DetailedInsts;
  Est.Report.Scheme = Scheme;
  Est.Report.PerStructure = Stream.Activity.structureEnergy(Scheme, Coeffs);
  double Total = 0.0;
  for (double E : Est.Report.PerStructure)
    Total += E;
  Est.Report.TotalEnergy =
      Total + Coeffs.ClockPerCycle * static_cast<double>(Est.Uarch.Cycles);
  Est.Report.Uarch = Est.Uarch;
  return Est;
}

SampleEstimate
og::runSampled(const DecodedProgram &DP, const RunOptions &Ref,
               const UarchConfig &Uarch, GatingScheme Scheme,
               const EnergyCoefficients &Coeffs, const SamplePlan &Plan,
               const SampleSpec &Spec,
               const std::vector<CoreWarmState> *Checkpoints) {
  return deriveSampleEstimate(
      runSampledStream(DP, Ref, Uarch, Plan, Spec, Checkpoints), Scheme,
      Coeffs);
}

SampleEstimate og::estimateSampled(const DecodedProgram &DP,
                                   const RunOptions &Ref,
                                   const UarchConfig &Uarch,
                                   GatingScheme Scheme,
                                   const EnergyCoefficients &Coeffs,
                                   const SampleSpec &Spec) {
  const SampleArtifacts Art = prepareSampled(DP, Ref, Uarch, Spec);
  // Fast-forward through superblocks formed from the profile the
  // preparation pass just produced (unless the caller attached a plan of
  // their own); window boundaries fission, so the detailed windows see
  // the identical stream.
  SuperblockPlan Sb(DP, Art.BlockProfile);
  RunOptions Opts = Ref;
  if (!Opts.Superblocks)
    Opts.Superblocks = &Sb;
  return runSampled(DP, Opts, Uarch, Scheme, Coeffs, Art.Plan, Spec,
                    Art.Checkpoints.empty() ? nullptr : &Art.Checkpoints);
}

double SampleErrors::maxAbs() const {
  return std::max(std::max(std::fabs(Energy), std::fabs(Cycles)),
                  std::max(std::fabs(Ipc), std::fabs(Insts)));
}

SampleErrors og::compareToExact(const SampleEstimate &Est,
                                const EnergyReport &Exact) {
  auto Rel = [](double EstV, double ExactV) {
    return ExactV != 0.0 ? (EstV - ExactV) / ExactV : 0.0;
  };
  SampleErrors E;
  E.Energy = Rel(Est.Report.TotalEnergy, Exact.TotalEnergy);
  E.Cycles = Rel(static_cast<double>(Est.Uarch.Cycles),
                 static_cast<double>(Exact.Uarch.Cycles));
  E.Ipc = Rel(Est.Uarch.ipc(), Exact.Uarch.ipc());
  E.Insts = Rel(static_cast<double>(Est.Uarch.Insts),
                static_cast<double>(Exact.Uarch.Insts));
  return E;
}
