//===- sample/SampleRunner.cpp ---------------------------------------------==//

#include "sample/SampleRunner.h"

#include "driver/ThreadPool.h"
#include "sample/KMeans.h"
#include "sim/Machine.h"
#include "sim/Superblock.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

using namespace og;

SamplePlan og::makeSamplePlan(const IntervalProfiler &Prof,
                              const SampleSpec &Spec) {
  assert(Spec.enabled() && "sampling disabled in spec");
  assert(Prof.numIntervals() > 0 && "profile recorded no intervals");

  SamplePlan Plan;
  Plan.IntervalLen = Prof.intervalLen();
  Plan.TotalInsts = Prof.totalInsts();
  Plan.IntervalInsts = Prof.intervalInsts();
  {
    uint64_t Chase = 0;
    for (uint32_t C : Prof.chases())
      Chase += C;
    Plan.ChaseFrac =
        static_cast<double>(Chase) / static_cast<double>(Plan.TotalInsts);
  }

  std::vector<std::vector<double>> Points =
      projectPoints(Prof.normalizedBbvs(), Spec.ProjectDims, Spec.Seed);
  const size_t N = Points.size();
  if (Spec.TimeWeight > 0.0) {
    // Temporal augmentation: one extra coordinate walking 0..TimeWeight
    // across the run (see SampleSpec::TimeWeight).
    for (size_t I = 0; I < N; ++I)
      Points[I].push_back(N > 1 ? Spec.TimeWeight * static_cast<double>(I) /
                                      static_cast<double>(N - 1)
                                : 0.0);
  }

  // Fixed k when the spec names one. Otherwise BIC picks the phase
  // count, and a coverage floor of one cluster per 16 intervals (capped)
  // adds sampling capacity for long runs: their residual error is
  // within-phase variance, which more strata shrink even when the BIC
  // curve is happy with a handful of phases.
  unsigned K;
  KMeansResult Clusters;
  if (Spec.K) {
    K = Spec.K;
    Clusters = kmeansCluster(Points, K, Spec.Seed);
  } else {
    KMeansResult BicWinner;
    const unsigned Bic =
        pickK(Points, Spec.MaxK, Spec.Seed, nullptr, 0.9, &BicWinner);
    const unsigned Coverage = std::min<unsigned>(
        std::max<unsigned>(static_cast<unsigned>(N / 16), 1), 24);
    K = std::max(Bic, Coverage);
    // Reuse the BIC winner when the coverage floor did not raise k.
    Clusters = K == Bic ? std::move(BicWinner)
                        : kmeansCluster(Points, K, Spec.Seed);
  }

  // Elect per-cluster representatives (member closest to the centroid,
  // smallest index on ties) and the dynamic-instruction weights.
  // Clusters that ended up empty are dropped — they carry no weight and
  // would have nothing to represent.
  std::vector<int> Remap(Clusters.K, -1);
  std::vector<std::vector<uint32_t>> MemberSets;
  std::vector<size_t> RepPositions;
  std::vector<double> ClusterDisp; ///< weighted mean dist to centroid
  for (unsigned C = 0; C < Clusters.K; ++C) {
    uint32_t Rep = 0;
    size_t RepPos = 0;
    double RepD = std::numeric_limits<double>::infinity();
    uint64_t Insts = 0;
    double Disp = 0.0;
    std::vector<uint32_t> Members;
    for (size_t I = 0; I < N; ++I) {
      if (Clusters.Assign[I] != static_cast<int>(C))
        continue;
      Insts += Plan.IntervalInsts[I];
      Members.push_back(static_cast<uint32_t>(I));
      double D = squaredDistance(Points[I], Clusters.Centroids[C]);
      Disp += static_cast<double>(Plan.IntervalInsts[I]) * std::sqrt(D);
      if (D < RepD) {
        RepD = D;
        Rep = static_cast<uint32_t>(I);
        RepPos = Members.size() - 1;
      }
    }
    if (Insts == 0)
      continue;
    Remap[C] = static_cast<int>(Plan.Reps.size());
    Plan.Reps.push_back(Rep);
    Plan.Weights.push_back(static_cast<double>(Insts) /
                           static_cast<double>(Plan.TotalInsts));
    MemberSets.push_back(std::move(Members));
    RepPositions.push_back(RepPos);
    ClusterDisp.push_back(Disp / static_cast<double>(Plan.TotalInsts));
  }
  Plan.K = static_cast<unsigned>(Plan.Reps.size());

  // Sample allocation (Neyman-style): every cluster gets its
  // representative; the remaining budget of (SamplesPerCluster - 1) * K
  // extra samples goes to clusters in proportion to their dispersion,
  // where single-rep estimation is least trustworthy (phase ramps,
  // drifting behavior — the temporal feature gives even BBV-identical
  // drift stretches a usable spread). A plan with no dispersion signal
  // at all spreads the budget evenly.
  {
    const size_t Budget =
        static_cast<size_t>(std::max(Spec.SamplesPerCluster, 1u) - 1) *
        Plan.K;
    double DispTotal = 0.0;
    for (double D : ClusterDisp)
      DispTotal += D;
    std::vector<size_t> Extra(Plan.K, 0);
    if (DispTotal > 0.0) {
      // Largest-remainder apportionment, deterministic tie-break by
      // cluster index.
      std::vector<std::pair<double, unsigned>> Rema;
      size_t Assigned = 0;
      for (unsigned C = 0; C < Plan.K; ++C) {
        double Share =
            static_cast<double>(Budget) * ClusterDisp[C] / DispTotal;
        Extra[C] = static_cast<size_t>(Share);
        Assigned += Extra[C];
        Rema.push_back({Share - static_cast<double>(Extra[C]), C});
      }
      std::sort(Rema.begin(), Rema.end(), [](const auto &A, const auto &B) {
        if (A.first != B.first)
          return A.first > B.first;
        return A.second < B.second;
      });
      for (size_t J = 0; J < Rema.size() && Assigned < Budget;
           ++J, ++Assigned)
        ++Extra[Rema[J].second];
    } else if (Plan.K) {
      for (unsigned C = 0; C < Plan.K; ++C)
        Extra[C] = Budget / Plan.K;
    }

    for (unsigned C = 0; C < Plan.K; ++C) {
      const std::vector<uint32_t> &Members = MemberSets[C];
      const size_t M = Members.size();
      const size_t R = std::min<size_t>(1 + Extra[C], M);
      // Evenly-spaced member picks (stratified within the cluster), with
      // the pick nearest the representative's slot replaced by the
      // representative itself.
      std::vector<uint32_t> Samples;
      size_t Nearest = 0;
      size_t NearestDist = M;
      for (size_t J = 0; J < R; ++J) {
        const size_t Pos = (2 * J + 1) * M / (2 * R);
        Samples.push_back(Members[Pos]);
        const size_t Dist = Pos > RepPositions[C] ? Pos - RepPositions[C]
                                                  : RepPositions[C] - Pos;
        if (Dist < NearestDist) {
          NearestDist = Dist;
          Nearest = J;
        }
      }
      Samples[Nearest] = Plan.Reps[C];
      std::sort(Samples.begin(), Samples.end());
      Samples.erase(std::unique(Samples.begin(), Samples.end()),
                    Samples.end());
      Plan.Samples.push_back(std::move(Samples));
    }
  }
  Plan.Assign.resize(N);
  for (size_t I = 0; I < N; ++I)
    Plan.Assign[I] = Remap[static_cast<size_t>(Clusters.Assign[I])];

  // Homogeneity proxy: instruction-weighted mean distance of every
  // interval to its cluster's representative vector.
  double Disp = 0.0;
  for (size_t I = 0; I < N; ++I) {
    const uint32_t Rep = Plan.Reps[static_cast<size_t>(Plan.Assign[I])];
    Disp += static_cast<double>(Plan.IntervalInsts[I]) /
            static_cast<double>(Plan.TotalInsts) *
            std::sqrt(squaredDistance(Points[I], Points[Rep]));
  }
  Plan.Dispersion = Disp;
  return Plan;
}

namespace {

/// Mirrors UarchStats with double-precision accumulators so per-cluster
/// deltas can be scaled by fractional weights before the final rounding.
struct ScaledStats {
  double Insts = 0, Cycles = 0, FetchGroups = 0, ICacheMisses = 0,
         DL1Accesses = 0, DL1Misses = 0, L2Accesses = 0, L2Misses = 0,
         Branches = 0, Mispredicts = 0;

  void addScaled(double F, const UarchStats &A, const UarchStats &B) {
    Insts += F * static_cast<double>(B.Insts - A.Insts);
    Cycles += F * static_cast<double>(B.Cycles - A.Cycles);
    FetchGroups += F * static_cast<double>(B.FetchGroups - A.FetchGroups);
    ICacheMisses += F * static_cast<double>(B.ICacheMisses - A.ICacheMisses);
    DL1Accesses += F * static_cast<double>(B.DL1Accesses - A.DL1Accesses);
    DL1Misses += F * static_cast<double>(B.DL1Misses - A.DL1Misses);
    L2Accesses += F * static_cast<double>(B.L2Accesses - A.L2Accesses);
    L2Misses += F * static_cast<double>(B.L2Misses - A.L2Misses);
    Branches += F * static_cast<double>(B.Branches - A.Branches);
    Mispredicts += F * static_cast<double>(B.Mispredicts - A.Mispredicts);
  }

  UarchStats rounded() const {
    auto R = [](double V) { return static_cast<uint64_t>(std::llround(V)); };
    UarchStats S;
    S.Insts = R(Insts);
    S.Cycles = R(Cycles);
    S.FetchGroups = R(FetchGroups);
    S.ICacheMisses = R(ICacheMisses);
    S.DL1Accesses = R(DL1Accesses);
    S.DL1Misses = R(DL1Misses);
    S.L2Accesses = R(L2Accesses);
    S.L2Misses = R(L2Misses);
    S.Branches = R(Branches);
    S.Mispredicts = R(Mispredicts);
    return S;
  }
};

/// Scales per-window stat/activity deltas by their post-stratified
/// factors into the whole-run estimate, in window-index order. Shared by
/// the serial estimator and the window-parallel replay reduction so both
/// perform bit-identical floating-point arithmetic — the byte-identity
/// of sampled documents across execution modes hangs on this.
void reduceWindowDeltas(const std::vector<double> &Factors,
                        const std::vector<UarchStats> &StatDelta,
                        const std::vector<ActivityCounts> &CountDelta,
                        UarchStats &OutStats, ActivityCounts &OutCounts) {
  assert(Factors.size() == StatDelta.size());
  assert(Factors.size() == CountDelta.size());
  ScaledStats Acc;
  for (size_t C = 0; C < Factors.size(); ++C) {
    Acc.addScaled(Factors[C], UarchStats(), StatDelta[C]);
    OutCounts.addScaled(Factors[C], ActivityCounts(), CountDelta[C]);
  }
  OutStats = Acc.rounded();
}

/// Feeds the in-window trace to one OooCore+ActivityRecorder stack and
/// records per-cluster stat/activity deltas across each window's counted
/// stretch. Each window arrives in three phases: a functional-warming
/// shadow (light records routed to OooCore::warmOnly), a
/// detailed-but-uncounted warm-up, and the counted representative
/// interval bracketed by the stat/activity snapshots. With checkpoints,
/// the shadow phase is empty and each window instead opens on a *fresh*
/// core restoring the warm state captured at its warm-start index —
/// equivalent to a full-prefix shadow (the snapshots bracket only the
/// counted stretch, so restoring tables without rewinding counters
/// cancels out of every delta), and, because no pipeline state leaks
/// across windows, bit-identical whether the windows run in one pass or
/// as independent replays on different threads. Recording the
/// scheme-free histogram instead of one scheme's energy is what lets a
/// single detailed pass serve every gating cell of the stream
/// (deriveSampleEstimate).
class WindowEstimator final : public TraceSink {
public:
  struct Win {
    uint64_t Shadow = 0, Warmup = 0, Counted = 0;
    unsigned Cluster = 0;
  };

  /// \p CkptBase offsets the checkpoint lookup: a replay estimator built
  /// for the single window j passes Wins = {layout window j} and
  /// CkptBase = j against the full checkpoint vector.
  WindowEstimator(const UarchConfig &Uarch, std::vector<Win> Windows,
                  const std::vector<CoreWarmState> *Checkpoints = nullptr,
                  size_t CkptBase = 0)
      : Uarch(Uarch), Wins(std::move(Windows)), Ckpt(Checkpoints),
        CkptBase(CkptBase), StatDelta(Wins.size()), CountDelta(Wins.size()) {
    if (!Ckpt)
      Core = std::make_unique<OooCore>(Uarch, &Rec);
  }

  void onBatch(const DynInst *Batch, size_t N) override {
    Delivered += N;
    while (N > 0) {
      // Always-on (not assert): in a Release build an overrun would
      // silently smear extra instructions into the last window's delta.
      if (Cur >= Wins.size())
        throw std::runtime_error(
            "sampled estimation: trace exceeds the planned windows");
      const Win &W = Wins[Cur];
      if (Ckpt && Into == 0) {
        Core = std::make_unique<OooCore>(Uarch, &Rec);
        Core->restoreWarmState((*Ckpt)[CkptBase + Cur]);
      }
      if (!CountingStarted && Into >= W.Shadow + W.Warmup) {
        snapStart();
        CountingStarted = true;
      }
      const bool InShadow = Into < W.Shadow;
      const uint64_t Limit = InShadow
                                 ? W.Shadow
                                 : (CountingStarted
                                        ? W.Shadow + W.Warmup + W.Counted
                                        : W.Shadow + W.Warmup);
      const size_t Take =
          static_cast<size_t>(std::min<uint64_t>(N, Limit - Into));
      if (InShadow)
        Core->warmOnly(Batch, Take);
      else
        Core->onBatch(Batch, Take);
      Batch += Take;
      N -= Take;
      Into += Take;
      if (CountingStarted && Into == W.Shadow + W.Warmup + W.Counted) {
        snapEnd(Cur);
        ++Cur;
        Into = 0;
        CountingStarted = false;
      }
    }
  }

  bool allWindowsComplete() const { return Cur == Wins.size(); }
  uint64_t deliveredInsts() const { return Delivered; }

  /// Raw per-window deltas, for the replay path's cross-thread gather.
  const UarchStats &statDelta(size_t W) const { return StatDelta[W]; }
  const ActivityCounts &countDelta(size_t W) const { return CountDelta[W]; }

  /// Scales the per-window deltas into the whole-run estimate.
  void estimate(const std::vector<double> &Factors, UarchStats &OutStats,
                ActivityCounts &OutCounts) const {
    reduceWindowDeltas(Factors, StatDelta, CountDelta, OutStats, OutCounts);
  }

private:
  void snapStart() {
    StatStart = Core->snapshot();
    CountStart = Rec.counts();
  }

  void snapEnd(size_t Window) {
    const UarchStats End = Core->snapshot();
    const UarchStats &A = StatStart;
    UarchStats &D = StatDelta[Window];
    D.Insts += End.Insts - A.Insts;
    D.Cycles += End.Cycles - A.Cycles;
    D.FetchGroups += End.FetchGroups - A.FetchGroups;
    D.ICacheMisses += End.ICacheMisses - A.ICacheMisses;
    D.DL1Accesses += End.DL1Accesses - A.DL1Accesses;
    D.DL1Misses += End.DL1Misses - A.DL1Misses;
    D.L2Accesses += End.L2Accesses - A.L2Accesses;
    D.L2Misses += End.L2Misses - A.L2Misses;
    D.Branches += End.Branches - A.Branches;
    D.Mispredicts += End.Mispredicts - A.Mispredicts;
    CountDelta[Window].addScaled(1.0, CountStart, Rec.counts());
  }

  UarchConfig Uarch;
  ActivityRecorder Rec;
  std::unique_ptr<OooCore> Core;
  std::vector<Win> Wins;
  const std::vector<CoreWarmState> *Ckpt;
  size_t CkptBase = 0;
  size_t Cur = 0;
  uint64_t Into = 0;
  uint64_t Delivered = 0;
  bool CountingStarted = false;
  UarchStats StatStart;
  std::vector<UarchStats> StatDelta;
  ActivityCounts CountStart;
  std::vector<ActivityCounts> CountDelta;
};

/// The concrete window layout a plan induces: the engine's trace windows,
/// the estimator's per-window phase lengths, and the post-stratified
/// scaling factors. Derived deterministically from (Plan, Spec), so the
/// capture pass (prepareSampled) and the estimation pass (runSampled)
/// independently compute identical layouts.
struct WindowLayout {
  std::vector<SampleWindow> Engine;
  std::vector<WindowEstimator::Win> Wins;
  std::vector<double> Factors;
};

/// Lays out one window per (cluster, sample), ordered by position in the
/// run. Warm-up is clamped so windows never overlap the run start or
/// each other (a sample directly behind another window keeps its counted
/// stretch and loses warm-up instead). With \p Checkpointed, the warming
/// shadows are dropped entirely — each window's engine range starts at
/// its warm-start index (Begin - Warmup), where prepareSampled captured
/// a CoreWarmState to restore instead.
WindowLayout layoutWindows(const SamplePlan &Plan, const SampleSpec &Spec,
                           bool Checkpointed) {
  if (Plan.K == 0)
    throw std::invalid_argument("sample plan has no clusters");

  // Interval start offsets in dynamic-instruction space.
  std::vector<uint64_t> Starts(Plan.numIntervals());
  uint64_t Off = 0;
  for (size_t I = 0; I < Plan.numIntervals(); ++I) {
    Starts[I] = Off;
    Off += Plan.IntervalInsts[I];
  }

  struct SampleSite {
    uint32_t Interval = 0;
    unsigned Cluster = 0;
  };
  std::vector<SampleSite> Sites;
  for (unsigned C = 0; C < Plan.K; ++C)
    for (uint32_t I : Plan.Samples[C])
      Sites.push_back({I, C});
  std::sort(Sites.begin(), Sites.end(),
            [](const SampleSite &A, const SampleSite &B) {
              return A.Interval < B.Interval;
            });

  // Shadow length per window. Deliberately scaled by K (not the number
  // of sample windows): more samples per cluster must not dilute each
  // window's warming. Chase-heavy plans widen the budget — their cycles
  // depend on cache history no short shadow can rebuild (see
  // SampleSpec::ChaseWarmGain).
  const double ShadowFrac = std::min(
      Spec.WarmupFrac + Spec.ChaseWarmGain * Plan.ChaseFrac, 1.0);
  const uint64_t ShadowTarget =
      Checkpointed ? 0
                   : static_cast<uint64_t>(
                         ShadowFrac * static_cast<double>(Plan.TotalInsts) /
                         static_cast<double>(Plan.K));

  WindowLayout L;
  uint64_t PrevEnd = 0;
  for (const SampleSite &S : Sites) {
    const uint64_t Begin = Starts[S.Interval];
    // Per-sample measuring stretch: the cluster's CountedLen budget
    // split over its samples, clamped to the interval.
    uint64_t Counted = Plan.IntervalInsts[S.Interval];
    if (Spec.CountedLen) {
      // Floor of 700 so heavily-sampled clusters still measure stretches
      // long enough to amortize window-boundary effects.
      const uint64_t Share = std::max<uint64_t>(
          Spec.CountedLen / Plan.Samples[S.Cluster].size(), 700);
      Counted = std::min(Share, Counted);
    }
    const uint64_t End = Begin + Counted;
    // Warm-up prefix, clamped to the gap behind the previous window: the
    // detailed warm-up keeps priority, the cheap warming shadow takes
    // whatever budget remains.
    const uint64_t Gap = Begin - PrevEnd;
    const uint64_t Warmup = std::min(Spec.WarmupLen, Gap);
    const uint64_t Shadow = std::min(ShadowTarget, Gap - Warmup);
    L.Engine.push_back({Begin - Warmup - Shadow, End, Shadow});
    L.Wins.push_back({Shadow, Warmup, Counted, S.Cluster});
    PrevEnd = End;
  }

  // Post-stratified weighting: every interval is represented by the
  // temporally-nearest sample of its own cluster, and each window's
  // counted delta is scaled by (instructions it represents / counted
  // instructions). Inside a heterogeneous cluster this keeps a sample at
  // a phase edge from diluting the mass of the plateau members — each
  // member is accounted by its most-similar sample — and the integer
  // represented-instruction totals keep the Insts estimate exact.
  std::vector<std::vector<size_t>> ClusterWindows(Plan.K);
  for (size_t W = 0; W < Sites.size(); ++W)
    ClusterWindows[Sites[W].Cluster].push_back(W);
  std::vector<uint64_t> Represented(Sites.size(), 0);
  for (size_t I = 0; I < Plan.numIntervals(); ++I) {
    const unsigned C = static_cast<unsigned>(Plan.Assign[I]);
    size_t Best = ClusterWindows[C].front();
    uint64_t BestDist = ~uint64_t(0);
    for (size_t W : ClusterWindows[C]) {
      const uint32_t S = Sites[W].Interval;
      const uint64_t Dist =
          S > I ? static_cast<uint64_t>(S) - I : I - static_cast<uint64_t>(S);
      if (Dist < BestDist) {
        BestDist = Dist;
        Best = W;
      }
    }
    Represented[Best] += Plan.IntervalInsts[I];
  }
  L.Factors.resize(Sites.size());
  for (size_t W = 0; W < Sites.size(); ++W)
    L.Factors[W] = static_cast<double>(Represented[W]) /
                   static_cast<double>(L.Wins[W].Counted);
  return L;
}

/// Shadow architectural machine reconstructed from the light record
/// stream: registers come from each record's Result/WroteDest, memory
/// from store records (Result is the stored value truncated to the store
/// width — exactly what storeBytes writes), the call stack from Jsr/Ret
/// (a Jsr record's Pc maps to the engine's Frame::JsrFlat as
/// (Pc - CodeBase) / 4), and the output-stream length from Out records.
/// Registers never written keep their initial values, so the shadow
/// machine is initialized exactly as the engine initializes a run: data
/// segment installed, SP at the top of memory, arguments in a0..
///
/// Page-dirty tracking lives here — compiled into the capture path only,
/// so the engine's no-sink/threaded dispatch throughput is untouched.
/// Every store marks its page(s); at each checkpoint the dirty set is
/// drained into an ArchDelta of full page images. Budget accounting
/// charges each newly-dirtied page as it appears plus a fixed overhead
/// per checkpoint, so a blowup is detected within one batch of where it
/// happens rather than at the end of the pass.
class ArchShadow {
public:
  ArchShadow(const DecodedProgram &DP, const RunOptions &Ref,
             uint64_t MaxBytes)
      : M(Ref.Machine), MaxBytes(MaxBytes),
        NumPages((M.memSize() + ArchPageBytes - 1) / ArchPageBytes),
        DirtyFlag(NumPages, 0) {
    M.installData(Program::DataBase, DP.program().Data);
    M.writeReg(RegSP, static_cast<int64_t>(M.memSize()) - 64);
    for (size_t I = 0; I < Ref.ArgRegs.size() && I < NumArgRegs; ++I)
      M.writeReg(static_cast<Reg>(RegA0 + I), Ref.ArgRegs[I]);
  }

  void apply(const DynInst *Batch, size_t N) {
    for (size_t I = 0; I < N; ++I) {
      const DynInst &D = Batch[I];
      const Instruction &Inst = *D.I;
      if (D.WroteDest)
        M.writeReg(Inst.Rd, D.Result);
      switch (Inst.Opc) {
      case Op::St: {
        const unsigned Bytes = widthBytes(Inst.W);
        markDirty(D.MemAddr, Bytes);
        M.storeBytes(D.MemAddr, Bytes, static_cast<uint64_t>(D.Result));
        break;
      }
      case Op::Jsr:
        Frames.push_back(static_cast<int32_t>(
            (D.Pc - DecodedProgram::CodeBase) / 4));
        break;
      case Op::Ret:
        if (!Frames.empty())
          Frames.pop_back();
        break;
      case Op::Out:
        ++OutputLen;
        break;
      default:
        break;
      }
      ++DynIndex;
    }
  }

  /// Captures the state just before \p NextRec (the record at the current
  /// dynamic index) executes, draining the dirty pages accumulated since
  /// the previous capture.
  ArchCheckpoint capture(const DynInst &NextRec) {
    ArchCheckpoint C;
    C.State.DynIndex = DynIndex;
    C.State.Flat = static_cast<int32_t>(
        (NextRec.Pc - DecodedProgram::CodeBase) / 4);
    std::memcpy(C.State.Regs, M.regs(), sizeof(C.State.Regs));
    C.State.Frames = Frames;
    C.State.OutputLen = OutputLen;
    std::sort(DirtyList.begin(), DirtyList.end());
    C.Delta.Pages = std::move(DirtyList);
    DirtyList.clear();
    C.Delta.Bytes.reserve(C.Delta.Pages.size() * ArchPageBytes);
    for (uint32_t P : C.Delta.Pages) {
      DirtyFlag[P] = 0;
      const uint64_t Off = static_cast<uint64_t>(P) * ArchPageBytes;
      const size_t Len = static_cast<size_t>(
          std::min<uint64_t>(ArchPageBytes, M.memSize() - Off));
      C.Delta.Bytes.insert(C.Delta.Bytes.end(), M.memData() + Off,
                           M.memData() + Off + Len);
    }
    BytesUsed += sizeof(ArchState) + C.State.Frames.size() * sizeof(int32_t) +
                 C.Delta.Pages.size() * sizeof(uint32_t);
    return C;
  }

  bool overBudget() const { return BytesUsed > MaxBytes; }
  uint64_t bytesUsed() const { return BytesUsed; }

private:
  void markDirty(uint64_t Addr, unsigned Bytes) {
    // Mirror storeBytes' bounds check: a faulting store writes nothing.
    if (Addr + Bytes > M.memSize() || Addr + Bytes < Addr)
      return;
    const uint64_t First = Addr / ArchPageBytes;
    const uint64_t Last = (Addr + Bytes - 1) / ArchPageBytes;
    for (uint64_t P = First; P <= Last; ++P) {
      if (DirtyFlag[P])
        continue;
      DirtyFlag[P] = 1;
      DirtyList.push_back(static_cast<uint32_t>(P));
      BytesUsed += std::min<uint64_t>(ArchPageBytes,
                                      M.memSize() - P * ArchPageBytes);
    }
  }

  Machine M;
  uint64_t MaxBytes;
  uint64_t NumPages;
  std::vector<uint8_t> DirtyFlag;
  std::vector<uint32_t> DirtyList;
  std::vector<int32_t> Frames;
  uint64_t OutputLen = 0;
  uint64_t DynIndex = 0;
  uint64_t BytesUsed = 0;
};

/// Drives one OooCore through the light dynamic stream with warmOnly()
/// and snapshots its warm state at each requested stop (ascending
/// dynamic-instruction indices); optionally shadows the architectural
/// state too and captures an ArchCheckpoint at the same stops. A stop at
/// index 0 is warm-captured at construction — the pristine core — so the
/// engine's skip of empty windows never loses a capture; its
/// architectural twin is captured when the first record arrives (the
/// capture pass always delivers one past the last stop, so every stop
/// sees its boundary record). Architectural capture self-disables the
/// moment the byte budget is exceeded — the partial checkpoints are
/// dropped and only the flag survives.
class CheckpointRecorder final : public TraceSink {
public:
  CheckpointRecorder(const UarchConfig &Uarch, const DecodedProgram &DP,
                     const RunOptions &Ref, std::vector<uint64_t> StopsIn,
                     std::vector<CoreWarmState> &Out,
                     std::vector<ArchCheckpoint> *ArchOut,
                     uint64_t ArchMaxBytes)
      : Core(Uarch, nullptr), Stops(std::move(StopsIn)), Out(Out),
        ArchOut(ArchOut) {
    if (ArchOut) {
      ArchOut->reserve(Stops.size());
      Shadow = std::make_unique<ArchShadow>(DP, Ref, ArchMaxBytes);
    }
    capturePending();
  }

  void onBatch(const DynInst *Batch, size_t N) override {
    while (N > 0) {
      if (Shadow) {
        while (ArchNext < Stops.size() && Stops[ArchNext] == Seen) {
          ArchOut->push_back(Shadow->capture(Batch[0]));
          ++ArchNext;
        }
      }
      const uint64_t Until = Next < Stops.size() ? Stops[Next] : ~uint64_t(0);
      const size_t Take =
          static_cast<size_t>(std::min<uint64_t>(N, Until - Seen));
      Core.warmOnly(Batch, Take);
      if (Shadow) {
        Shadow->apply(Batch, Take);
        if (Shadow->overBudget()) {
          ArchBytes = Shadow->bytesUsed();
          ArchOut->clear();
          ArchOut = nullptr;
          Shadow.reset();
          Exceeded = true;
        }
      }
      Batch += Take;
      N -= Take;
      Seen += Take;
      capturePending();
    }
  }

  bool done() const {
    return Next == Stops.size() &&
           (!Shadow || ArchNext == Stops.size());
  }

  bool archOverBudget() const { return Exceeded; }
  uint64_t archBytes() const {
    return Shadow ? Shadow->bytesUsed() : ArchBytes;
  }

private:
  void capturePending() {
    while (Next < Stops.size() && Stops[Next] == Seen) {
      Out.push_back(Core.warmState());
      ++Next;
    }
  }

  OooCore Core;
  std::vector<uint64_t> Stops;
  std::vector<CoreWarmState> &Out;
  std::vector<ArchCheckpoint> *ArchOut;
  std::unique_ptr<ArchShadow> Shadow;
  size_t Next = 0;
  size_t ArchNext = 0;
  uint64_t Seen = 0;
  uint64_t ArchBytes = 0;
  bool Exceeded = false;
};

} // namespace

SampleArtifacts og::prepareSampled(const DecodedProgram &DP,
                                   const RunOptions &Ref,
                                   const UarchConfig &Uarch,
                                   const SampleSpec &Spec) {
  // Profile at light-record cost: one full-length light window feeds the
  // profiler everything it reads (Func/Block/I/WroteDest) without the
  // register-file reads a full record pays for.
  IntervalProfiler Prof(DP, Spec.IntervalLen);
  RunOptions ProfOpts = Ref;
  ProfOpts.Sink = &Prof;
  RunResult ProfRun =
      runProgramWindowed(DP, ProfOpts, {{0, ~uint64_t(0), ~uint64_t(0)}});
  Prof.finish();
  if (ProfRun.Status != RunStatus::Halted)
    throw std::runtime_error("sampled estimation: profiled run did not halt");

  SampleArtifacts Art;
  Art.Plan = makeSamplePlan(Prof, Spec);
  Art.BlockProfile = std::move(ProfRun.Stats.BlockCounts);

  // Checkpoint capture pays about one more light run (trimmed at the
  // last window's warm start) and replaces every cell's warming shadows
  // AND — budget permitting — every cell's whole-stream fast-forward
  // with per-window replay.
  const WindowLayout L = layoutWindows(Art.Plan, Spec, /*Checkpointed=*/true);
  std::vector<uint64_t> Stops;
  Stops.reserve(L.Engine.size());
  for (const SampleWindow &W : L.Engine)
    Stops.push_back(W.Begin); // == counted begin - warm-up
  const uint64_t Last = Stops.back();

  Art.Checkpoints.reserve(Stops.size());
  CheckpointRecorder Recorder(
      Uarch, DP, Ref, std::move(Stops), Art.Checkpoints,
      Spec.ArchCheckpointMaxBytes ? &Art.ArchCheckpoints : nullptr,
      Spec.ArchCheckpointMaxBytes);
  {
    // The light window runs one record past the last stop so the stop's
    // boundary record (whose Pc is the resume point) is delivered; the
    // fuel trim stops the pass right there instead of running the tail
    // of the program at no-sink speed for nothing. The boundary record
    // always exists: the last window measures at least one instruction
    // past its warm start.
    RunOptions CapOpts = Ref;
    CapOpts.Sink = &Recorder;
    CapOpts.Fuel = std::min<uint64_t>(Ref.Fuel, Last + 1);
    runProgramWindowed(DP, CapOpts, {{0, Last + 1, Last + 1}});
  }
  if (!Recorder.done())
    throw std::runtime_error(
        "sampled estimation: checkpoint capture ended before the last "
        "planned window");
  Art.ArchBytes = Recorder.archBytes();
  Art.ArchBudgetExceeded = Recorder.archOverBudget();
  return Art;
}

namespace {

/// Splices one delta's page images into \p M.
void applyArchDelta(Machine &M, const ArchDelta &D) {
  const uint8_t *Src = D.Bytes.data();
  for (uint32_t P : D.Pages) {
    const uint64_t Off = static_cast<uint64_t>(P) * ArchPageBytes;
    const size_t Len = static_cast<size_t>(
        std::min<uint64_t>(ArchPageBytes, M.memSize() - Off));
    std::memcpy(M.memData() + Off, Src, Len);
    Src += Len;
  }
}

/// Window-parallel replay: the detailed pass as independent per-window
/// jobs instead of one whole-stream fast-forward. The exact functional
/// result comes from a dedicated full-speed (no-sink, superblock-fused)
/// pass; each window then materializes its machine state from the
/// checkpoint chain and executes only warm-up + counted stretch through
/// runProgramResumed. Windows are partitioned into contiguous chunks —
/// one per worker — so each chunk walks its delta chain once: apply
/// deltas 0..begin-1 to reach the chunk's entry memory image, then per
/// window apply its delta and replay. Stat/activity deltas land in
/// window-indexed slots and are reduced in window order by the same
/// arithmetic as the serial estimator, so the estimate is bit-identical
/// to the fast-forward path and across any WindowJobs value.
SampleStreamEstimate replayStream(const DecodedProgram &DP,
                                  const RunOptions &Ref,
                                  const UarchConfig &Uarch,
                                  const SampleArtifacts &Art,
                                  const WindowLayout &L, unsigned Jobs) {
  const std::vector<ArchCheckpoint> &Arch = Art.ArchCheckpoints;
  const size_t NW = L.Engine.size();

  SampleStreamEstimate Stream;
  Stream.Plan = Art.Plan;
  Stream.Replayed = true;
  {
    RunOptions NoSink = Ref;
    NoSink.Sink = nullptr;
    Stream.Run = runProgram(DP, NoSink);
  }

  std::vector<UarchStats> StatDelta(NW);
  std::vector<ActivityCounts> CountDelta(NW);
  std::vector<uint64_t> Delivered(NW, 0);
  const unsigned Chunks = static_cast<unsigned>(
      std::min<size_t>(std::max(Jobs, 1u), NW));
  std::vector<std::string> Errors(Chunks);

  ThreadPool Pool(Jobs);
  for (unsigned C = 0; C < Chunks; ++C) {
    const size_t ChunkBegin = C * NW / Chunks;
    const size_t ChunkEnd = (C + 1) * NW / Chunks;
    Pool.submit([&, ChunkBegin, ChunkEnd, C] {
      try {
        Machine M(Ref.Machine);
        M.installData(Program::DataBase, DP.program().Data);
        for (size_t J = 0; J < ChunkBegin; ++J)
          applyArchDelta(M, Arch[J].Delta);
        for (size_t J = ChunkBegin; J < ChunkEnd; ++J) {
          applyArchDelta(M, Arch[J].Delta);
          WindowEstimator Est(Uarch, {L.Wins[J]}, &Art.Checkpoints, J);
          RunOptions WinOpts = Ref;
          WinOpts.Sink = &Est;
          // Superblocks never engage inside a delivered window, and the
          // whole resumed stretch is one; fuel ends the run exactly at
          // the window's end.
          WinOpts.Superblocks = nullptr;
          WinOpts.Fuel = L.Engine[J].End - Arch[J].State.DynIndex;
          const RunResult R = runProgramResumed(DP, WinOpts, {L.Engine[J]},
                                                Arch[J].State, M);
          if (R.Status != RunStatus::OutOfFuel &&
              R.Status != RunStatus::Halted)
            throw std::runtime_error(
                "sampled replay: window did not complete: " + R.Message);
          if (!Est.allWindowsComplete())
            throw std::runtime_error(
                "sampled replay: window ended before its counted stretch");
          StatDelta[J] = Est.statDelta(0);
          CountDelta[J] = Est.countDelta(0);
          Delivered[J] = Est.deliveredInsts();
        }
      } catch (const std::exception &Ex) {
        Errors[C] = Ex.what();
      }
    });
  }
  Pool.wait();
  for (const std::string &E : Errors)
    if (!E.empty())
      throw std::runtime_error(E);

  for (uint64_t D : Delivered)
    Stream.DetailedInsts += D;
  reduceWindowDeltas(L.Factors, StatDelta, CountDelta, Stream.Uarch,
                     Stream.Activity);
  return Stream;
}

} // namespace

SampleStreamEstimate
og::runSampledStream(const DecodedProgram &DP, const RunOptions &Ref,
                     const UarchConfig &Uarch, const SampleArtifacts &Art,
                     const SampleSpec &Spec, const SampleRunPolicy &Policy) {
  const std::vector<CoreWarmState> *Warm =
      Art.Checkpoints.empty() ? nullptr : &Art.Checkpoints;
  if (Art.ArchCheckpoints.empty())
    return runSampledStream(DP, Ref, Uarch, Art.Plan, Spec, Warm);

  if (!Warm || Art.ArchCheckpoints.size() != Art.Checkpoints.size())
    throw std::invalid_argument(
        "sampled estimation: architectural checkpoints do not parallel "
        "the warm-state checkpoints");
  const WindowLayout L = layoutWindows(Art.Plan, Spec, /*Checkpointed=*/true);
  if (Art.Checkpoints.size() != L.Engine.size())
    throw std::invalid_argument(
        "sampled estimation: checkpoint count does not match the plan's "
        "windows (artifacts prepared under a different plan or spec?)");

  if (!Policy.ForceFastForward)
    return replayStream(DP, Ref, Uarch, Art, L, Policy.WindowJobs);

  // Forced fast-forward, pinned to the replay path's window-entry
  // registers so the two modes stay bit-identical even where the
  // binaries' dead register bytes diverge from the capture stream's.
  std::vector<const ArchState *> Entry(L.Engine.size());
  for (size_t J = 0; J < Entry.size(); ++J)
    Entry[J] = &Art.ArchCheckpoints[J].State;
  WindowEstimator Estimator(Uarch, L.Wins, Warm);
  RunOptions Opts = Ref;
  Opts.Sink = &Estimator;

  SampleStreamEstimate Stream;
  Stream.Plan = Art.Plan;
  runProgramWindowed(DP, Opts, L.Engine, &Entry);
  Stream.DetailedInsts = Estimator.deliveredInsts();
  if (!Estimator.allWindowsComplete())
    throw std::runtime_error(
        "sampled estimation: run ended before the planned windows");
  // The injected pass's functional result reflects the injected
  // registers; the exact result comes from the same dedicated full-speed
  // pass replay uses.
  {
    RunOptions NoSink = Ref;
    NoSink.Sink = nullptr;
    Stream.Run = runProgram(DP, NoSink);
  }
  Estimator.estimate(L.Factors, Stream.Uarch, Stream.Activity);
  return Stream;
}

SampleStreamEstimate
og::runSampledStream(const DecodedProgram &DP, const RunOptions &Ref,
                     const UarchConfig &Uarch, const SamplePlan &Plan,
                     const SampleSpec &Spec,
                     const std::vector<CoreWarmState> *Checkpoints) {
  if (Checkpoints && Checkpoints->empty())
    Checkpoints = nullptr;
  WindowLayout L = layoutWindows(Plan, Spec, Checkpoints != nullptr);
  if (Checkpoints && Checkpoints->size() != L.Engine.size())
    throw std::invalid_argument(
        "sampled estimation: checkpoint count does not match the plan's "
        "windows (artifacts prepared under a different plan or spec?)");

  WindowEstimator Estimator(Uarch, std::move(L.Wins), Checkpoints);
  RunOptions Opts = Ref;
  Opts.Sink = &Estimator;

  SampleStreamEstimate Stream;
  Stream.Plan = Plan;
  Stream.Run = runProgramWindowed(DP, Opts, L.Engine);
  Stream.DetailedInsts = Estimator.deliveredInsts();
  // Always-on (not assert): an incomplete window set would silently
  // scale zero deltas into the estimate in Release builds.
  if (!Estimator.allWindowsComplete())
    throw std::runtime_error(
        "sampled estimation: run ended before the planned windows");

  Estimator.estimate(L.Factors, Stream.Uarch, Stream.Activity);
  return Stream;
}

SampleEstimate og::deriveSampleEstimate(const SampleStreamEstimate &Stream,
                                        GatingScheme Scheme,
                                        const EnergyCoefficients &Coeffs) {
  SampleEstimate Est;
  Est.Uarch = Stream.Uarch;
  Est.Run = Stream.Run;
  Est.Plan = Stream.Plan;
  Est.DetailedInsts = Stream.DetailedInsts;
  Est.Replayed = Stream.Replayed;
  Est.Report.Scheme = Scheme;
  Est.Report.PerStructure = Stream.Activity.structureEnergy(Scheme, Coeffs);
  double Total = 0.0;
  for (double E : Est.Report.PerStructure)
    Total += E;
  Est.Report.TotalEnergy =
      Total + Coeffs.ClockPerCycle * static_cast<double>(Est.Uarch.Cycles);
  Est.Report.Uarch = Est.Uarch;
  return Est;
}

SampleEstimate
og::runSampled(const DecodedProgram &DP, const RunOptions &Ref,
               const UarchConfig &Uarch, GatingScheme Scheme,
               const EnergyCoefficients &Coeffs, const SampleArtifacts &Art,
               const SampleSpec &Spec, const SampleRunPolicy &Policy) {
  return deriveSampleEstimate(
      runSampledStream(DP, Ref, Uarch, Art, Spec, Policy), Scheme, Coeffs);
}

SampleEstimate
og::runSampled(const DecodedProgram &DP, const RunOptions &Ref,
               const UarchConfig &Uarch, GatingScheme Scheme,
               const EnergyCoefficients &Coeffs, const SamplePlan &Plan,
               const SampleSpec &Spec,
               const std::vector<CoreWarmState> *Checkpoints) {
  return deriveSampleEstimate(
      runSampledStream(DP, Ref, Uarch, Plan, Spec, Checkpoints), Scheme,
      Coeffs);
}

SampleEstimate og::estimateSampled(const DecodedProgram &DP,
                                   const RunOptions &Ref,
                                   const UarchConfig &Uarch,
                                   GatingScheme Scheme,
                                   const EnergyCoefficients &Coeffs,
                                   const SampleSpec &Spec,
                                   const SampleRunPolicy &Policy) {
  const SampleArtifacts Art = prepareSampled(DP, Ref, Uarch, Spec);
  // The full-speed functional pass (and, without architectural
  // checkpoints, the fast-forward) runs through superblocks formed from
  // the profile the preparation pass just produced, unless the caller
  // attached a plan of their own; window boundaries fission, so the
  // detailed windows see the identical stream.
  SuperblockPlan Sb(DP, Art.BlockProfile);
  RunOptions Opts = Ref;
  if (!Opts.Superblocks)
    Opts.Superblocks = &Sb;
  return runSampled(DP, Opts, Uarch, Scheme, Coeffs, Art, Spec, Policy);
}

double SampleErrors::maxAbs() const {
  return std::max(std::max(std::fabs(Energy), std::fabs(Cycles)),
                  std::max(std::fabs(Ipc), std::fabs(Insts)));
}

SampleErrors og::compareToExact(const SampleEstimate &Est,
                                const EnergyReport &Exact) {
  auto Rel = [](double EstV, double ExactV) {
    return ExactV != 0.0 ? (EstV - ExactV) / ExactV : 0.0;
  };
  SampleErrors E;
  E.Energy = Rel(Est.Report.TotalEnergy, Exact.TotalEnergy);
  E.Cycles = Rel(static_cast<double>(Est.Uarch.Cycles),
                 static_cast<double>(Exact.Uarch.Cycles));
  E.Ipc = Rel(Est.Uarch.ipc(), Exact.Uarch.ipc());
  E.Insts = Rel(static_cast<double>(Est.Uarch.Insts),
                static_cast<double>(Exact.Uarch.Insts));
  return E;
}
