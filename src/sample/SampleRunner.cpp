//===- sample/SampleRunner.cpp ---------------------------------------------==//

#include "sample/SampleRunner.h"

#include "sample/KMeans.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <limits>

using namespace og;

SamplePlan og::makeSamplePlan(const IntervalProfiler &Prof,
                              const SampleSpec &Spec) {
  assert(Spec.enabled() && "sampling disabled in spec");
  assert(Prof.numIntervals() > 0 && "profile recorded no intervals");

  SamplePlan Plan;
  Plan.IntervalLen = Prof.intervalLen();
  Plan.TotalInsts = Prof.totalInsts();
  Plan.IntervalInsts = Prof.intervalInsts();
  {
    uint64_t Chase = 0;
    for (uint32_t C : Prof.chases())
      Chase += C;
    Plan.ChaseFrac =
        static_cast<double>(Chase) / static_cast<double>(Plan.TotalInsts);
  }

  std::vector<std::vector<double>> Points =
      projectPoints(Prof.normalizedBbvs(), Spec.ProjectDims, Spec.Seed);
  const size_t N = Points.size();
  if (Spec.TimeWeight > 0.0) {
    // Temporal augmentation: one extra coordinate walking 0..TimeWeight
    // across the run (see SampleSpec::TimeWeight).
    for (size_t I = 0; I < N; ++I)
      Points[I].push_back(N > 1 ? Spec.TimeWeight * static_cast<double>(I) /
                                      static_cast<double>(N - 1)
                                : 0.0);
  }

  // Fixed k when the spec names one. Otherwise BIC picks the phase
  // count, and a coverage floor of one cluster per 16 intervals (capped)
  // adds sampling capacity for long runs: their residual error is
  // within-phase variance, which more strata shrink even when the BIC
  // curve is happy with a handful of phases.
  unsigned K;
  KMeansResult Clusters;
  if (Spec.K) {
    K = Spec.K;
    Clusters = kmeansCluster(Points, K, Spec.Seed);
  } else {
    KMeansResult BicWinner;
    const unsigned Bic =
        pickK(Points, Spec.MaxK, Spec.Seed, nullptr, 0.9, &BicWinner);
    const unsigned Coverage = std::min<unsigned>(
        std::max<unsigned>(static_cast<unsigned>(N / 16), 1), 24);
    K = std::max(Bic, Coverage);
    // Reuse the BIC winner when the coverage floor did not raise k.
    Clusters = K == Bic ? std::move(BicWinner)
                        : kmeansCluster(Points, K, Spec.Seed);
  }

  // Elect per-cluster representatives (member closest to the centroid,
  // smallest index on ties) and the dynamic-instruction weights.
  // Clusters that ended up empty are dropped — they carry no weight and
  // would have nothing to represent.
  std::vector<int> Remap(Clusters.K, -1);
  std::vector<std::vector<uint32_t>> MemberSets;
  std::vector<size_t> RepPositions;
  std::vector<double> ClusterDisp; ///< weighted mean dist to centroid
  for (unsigned C = 0; C < Clusters.K; ++C) {
    uint32_t Rep = 0;
    size_t RepPos = 0;
    double RepD = std::numeric_limits<double>::infinity();
    uint64_t Insts = 0;
    double Disp = 0.0;
    std::vector<uint32_t> Members;
    for (size_t I = 0; I < N; ++I) {
      if (Clusters.Assign[I] != static_cast<int>(C))
        continue;
      Insts += Plan.IntervalInsts[I];
      Members.push_back(static_cast<uint32_t>(I));
      double D = squaredDistance(Points[I], Clusters.Centroids[C]);
      Disp += static_cast<double>(Plan.IntervalInsts[I]) * std::sqrt(D);
      if (D < RepD) {
        RepD = D;
        Rep = static_cast<uint32_t>(I);
        RepPos = Members.size() - 1;
      }
    }
    if (Insts == 0)
      continue;
    Remap[C] = static_cast<int>(Plan.Reps.size());
    Plan.Reps.push_back(Rep);
    Plan.Weights.push_back(static_cast<double>(Insts) /
                           static_cast<double>(Plan.TotalInsts));
    MemberSets.push_back(std::move(Members));
    RepPositions.push_back(RepPos);
    ClusterDisp.push_back(Disp / static_cast<double>(Plan.TotalInsts));
  }
  Plan.K = static_cast<unsigned>(Plan.Reps.size());

  // Sample allocation (Neyman-style): every cluster gets its
  // representative; the remaining budget of (SamplesPerCluster - 1) * K
  // extra samples goes to clusters in proportion to their dispersion,
  // where single-rep estimation is least trustworthy (phase ramps,
  // drifting behavior — the temporal feature gives even BBV-identical
  // drift stretches a usable spread). A plan with no dispersion signal
  // at all spreads the budget evenly.
  {
    const size_t Budget =
        static_cast<size_t>(std::max(Spec.SamplesPerCluster, 1u) - 1) *
        Plan.K;
    double DispTotal = 0.0;
    for (double D : ClusterDisp)
      DispTotal += D;
    std::vector<size_t> Extra(Plan.K, 0);
    if (DispTotal > 0.0) {
      // Largest-remainder apportionment, deterministic tie-break by
      // cluster index.
      std::vector<std::pair<double, unsigned>> Rema;
      size_t Assigned = 0;
      for (unsigned C = 0; C < Plan.K; ++C) {
        double Share =
            static_cast<double>(Budget) * ClusterDisp[C] / DispTotal;
        Extra[C] = static_cast<size_t>(Share);
        Assigned += Extra[C];
        Rema.push_back({Share - static_cast<double>(Extra[C]), C});
      }
      std::sort(Rema.begin(), Rema.end(), [](const auto &A, const auto &B) {
        if (A.first != B.first)
          return A.first > B.first;
        return A.second < B.second;
      });
      for (size_t J = 0; J < Rema.size() && Assigned < Budget;
           ++J, ++Assigned)
        ++Extra[Rema[J].second];
    } else if (Plan.K) {
      for (unsigned C = 0; C < Plan.K; ++C)
        Extra[C] = Budget / Plan.K;
    }

    for (unsigned C = 0; C < Plan.K; ++C) {
      const std::vector<uint32_t> &Members = MemberSets[C];
      const size_t M = Members.size();
      const size_t R = std::min<size_t>(1 + Extra[C], M);
      // Evenly-spaced member picks (stratified within the cluster), with
      // the pick nearest the representative's slot replaced by the
      // representative itself.
      std::vector<uint32_t> Samples;
      size_t Nearest = 0;
      size_t NearestDist = M;
      for (size_t J = 0; J < R; ++J) {
        const size_t Pos = (2 * J + 1) * M / (2 * R);
        Samples.push_back(Members[Pos]);
        const size_t Dist = Pos > RepPositions[C] ? Pos - RepPositions[C]
                                                  : RepPositions[C] - Pos;
        if (Dist < NearestDist) {
          NearestDist = Dist;
          Nearest = J;
        }
      }
      Samples[Nearest] = Plan.Reps[C];
      std::sort(Samples.begin(), Samples.end());
      Samples.erase(std::unique(Samples.begin(), Samples.end()),
                    Samples.end());
      Plan.Samples.push_back(std::move(Samples));
    }
  }
  Plan.Assign.resize(N);
  for (size_t I = 0; I < N; ++I)
    Plan.Assign[I] = Remap[static_cast<size_t>(Clusters.Assign[I])];

  // Homogeneity proxy: instruction-weighted mean distance of every
  // interval to its cluster's representative vector.
  double Disp = 0.0;
  for (size_t I = 0; I < N; ++I) {
    const uint32_t Rep = Plan.Reps[static_cast<size_t>(Plan.Assign[I])];
    Disp += static_cast<double>(Plan.IntervalInsts[I]) /
            static_cast<double>(Plan.TotalInsts) *
            std::sqrt(squaredDistance(Points[I], Points[Rep]));
  }
  Plan.Dispersion = Disp;
  return Plan;
}

namespace {

/// Mirrors UarchStats with double-precision accumulators so per-cluster
/// deltas can be scaled by fractional weights before the final rounding.
struct ScaledStats {
  double Insts = 0, Cycles = 0, FetchGroups = 0, ICacheMisses = 0,
         DL1Accesses = 0, DL1Misses = 0, L2Accesses = 0, L2Misses = 0,
         Branches = 0, Mispredicts = 0;

  void addScaled(double F, const UarchStats &A, const UarchStats &B) {
    Insts += F * static_cast<double>(B.Insts - A.Insts);
    Cycles += F * static_cast<double>(B.Cycles - A.Cycles);
    FetchGroups += F * static_cast<double>(B.FetchGroups - A.FetchGroups);
    ICacheMisses += F * static_cast<double>(B.ICacheMisses - A.ICacheMisses);
    DL1Accesses += F * static_cast<double>(B.DL1Accesses - A.DL1Accesses);
    DL1Misses += F * static_cast<double>(B.DL1Misses - A.DL1Misses);
    L2Accesses += F * static_cast<double>(B.L2Accesses - A.L2Accesses);
    L2Misses += F * static_cast<double>(B.L2Misses - A.L2Misses);
    Branches += F * static_cast<double>(B.Branches - A.Branches);
    Mispredicts += F * static_cast<double>(B.Mispredicts - A.Mispredicts);
  }

  UarchStats rounded() const {
    auto R = [](double V) { return static_cast<uint64_t>(std::llround(V)); };
    UarchStats S;
    S.Insts = R(Insts);
    S.Cycles = R(Cycles);
    S.FetchGroups = R(FetchGroups);
    S.ICacheMisses = R(ICacheMisses);
    S.DL1Accesses = R(DL1Accesses);
    S.DL1Misses = R(DL1Misses);
    S.L2Accesses = R(L2Accesses);
    S.L2Misses = R(L2Misses);
    S.Branches = R(Branches);
    S.Mispredicts = R(Mispredicts);
    return S;
  }
};

/// Feeds the in-window trace to one OooCore+EnergyModel stack and records
/// per-cluster stat/energy deltas across each window's counted stretch.
/// Each window arrives in three phases: a functional-warming shadow
/// (light records routed to OooCore::warmOnly), a detailed-but-uncounted
/// warm-up, and the counted representative interval bracketed by the
/// stat/energy snapshots.
class WindowEstimator final : public TraceSink {
public:
  struct Win {
    uint64_t Shadow = 0, Warmup = 0, Counted = 0;
    unsigned Cluster = 0;
  };

  WindowEstimator(const UarchConfig &Uarch, GatingScheme Scheme,
                  const EnergyCoefficients &Coeffs, std::vector<Win> Windows)
      : EM(Scheme, Coeffs), Core(Uarch, &EM), Wins(std::move(Windows)),
        StatDelta(Wins.size()), EnergyDelta(Wins.size()) {
    EnergyStart.fill(0.0);
  }

  void onBatch(const DynInst *Batch, size_t N) override {
    Delivered += N;
    while (N > 0) {
      assert(Cur < Wins.size() && "trace exceeds the planned windows");
      const Win &W = Wins[Cur];
      if (!CountingStarted && Into >= W.Shadow + W.Warmup) {
        snapStart();
        CountingStarted = true;
      }
      const bool InShadow = Into < W.Shadow;
      const uint64_t Limit = InShadow
                                 ? W.Shadow
                                 : (CountingStarted
                                        ? W.Shadow + W.Warmup + W.Counted
                                        : W.Shadow + W.Warmup);
      const size_t Take =
          static_cast<size_t>(std::min<uint64_t>(N, Limit - Into));
      if (InShadow)
        Core.warmOnly(Batch, Take);
      else
        Core.onBatch(Batch, Take);
      Batch += Take;
      N -= Take;
      Into += Take;
      if (CountingStarted && Into == W.Shadow + W.Warmup + W.Counted) {
        snapEnd(Cur);
        ++Cur;
        Into = 0;
        CountingStarted = false;
      }
    }
  }

  bool allWindowsComplete() const { return Cur == Wins.size(); }
  uint64_t deliveredInsts() const { return Delivered; }

  /// Scales the per-window deltas into the whole-run estimate.
  void estimate(const std::vector<double> &Factors, UarchStats &OutStats,
                EnergyReport &OutReport) const {
    assert(Factors.size() == StatDelta.size());
    ScaledStats Acc;
    std::array<double, NumStructures> Energy;
    Energy.fill(0.0);
    for (size_t C = 0; C < Factors.size(); ++C) {
      Acc.addScaled(Factors[C], UarchStats(), StatDelta[C]);
      for (unsigned S = 0; S < NumStructures; ++S)
        Energy[S] += Factors[C] * EnergyDelta[C][S];
    }
    OutStats = Acc.rounded();
    OutReport.Scheme = EM.scheme();
    OutReport.PerStructure = Energy;
    double Total = 0.0;
    for (double E : Energy)
      Total += E;
    OutReport.TotalEnergy =
        Total + EM.clockPerCycle() * static_cast<double>(OutStats.Cycles);
    OutReport.Uarch = OutStats;
  }

private:
  void snapStart() {
    StatStart = Core.snapshot();
    for (unsigned S = 0; S < NumStructures; ++S)
      EnergyStart[S] = EM.structureEnergy(static_cast<Structure>(S));
  }

  void snapEnd(size_t Window) {
    const UarchStats End = Core.snapshot();
    const UarchStats &A = StatStart;
    UarchStats &D = StatDelta[Window];
    D.Insts += End.Insts - A.Insts;
    D.Cycles += End.Cycles - A.Cycles;
    D.FetchGroups += End.FetchGroups - A.FetchGroups;
    D.ICacheMisses += End.ICacheMisses - A.ICacheMisses;
    D.DL1Accesses += End.DL1Accesses - A.DL1Accesses;
    D.DL1Misses += End.DL1Misses - A.DL1Misses;
    D.L2Accesses += End.L2Accesses - A.L2Accesses;
    D.L2Misses += End.L2Misses - A.L2Misses;
    D.Branches += End.Branches - A.Branches;
    D.Mispredicts += End.Mispredicts - A.Mispredicts;
    for (unsigned S = 0; S < NumStructures; ++S)
      EnergyDelta[Window][S] +=
          EM.structureEnergy(static_cast<Structure>(S)) - EnergyStart[S];
  }

  EnergyModel EM;
  OooCore Core;
  std::vector<Win> Wins;
  size_t Cur = 0;
  uint64_t Into = 0;
  uint64_t Delivered = 0;
  bool CountingStarted = false;
  UarchStats StatStart;
  std::vector<UarchStats> StatDelta;
  std::array<double, NumStructures> EnergyStart;
  std::vector<std::array<double, NumStructures>> EnergyDelta;
};

} // namespace

SampleEstimate og::runSampled(const DecodedProgram &DP, const RunOptions &Ref,
                              const UarchConfig &Uarch, GatingScheme Scheme,
                              const EnergyCoefficients &Coeffs,
                              const SamplePlan &Plan, const SampleSpec &Spec) {
  assert(Plan.K > 0 && "plan has no clusters");

  // Interval start offsets in dynamic-instruction space.
  std::vector<uint64_t> Starts(Plan.numIntervals());
  uint64_t Off = 0;
  for (size_t I = 0; I < Plan.numIntervals(); ++I) {
    Starts[I] = Off;
    Off += Plan.IntervalInsts[I];
  }

  // One window per (cluster, sample), ordered by position in the run.
  // Warm-up is clamped so windows never overlap the run start or each
  // other (a sample directly behind another window keeps its counted
  // stretch and loses warm-up instead).
  struct SampleSite {
    uint32_t Interval = 0;
    unsigned Cluster = 0;
  };
  std::vector<SampleSite> Sites;
  for (unsigned C = 0; C < Plan.K; ++C)
    for (uint32_t I : Plan.Samples[C])
      Sites.push_back({I, C});
  std::sort(Sites.begin(), Sites.end(),
            [](const SampleSite &A, const SampleSite &B) {
              return A.Interval < B.Interval;
            });

  // Shadow length per window. Deliberately scaled by K (not the number
  // of sample windows): more samples per cluster must not dilute each
  // window's warming. Chase-heavy plans widen the budget — their cycles
  // depend on cache history no short shadow can rebuild (see
  // SampleSpec::ChaseWarmGain).
  const double ShadowFrac = std::min(
      Spec.WarmupFrac + Spec.ChaseWarmGain * Plan.ChaseFrac, 1.0);
  const uint64_t ShadowTarget = static_cast<uint64_t>(
      ShadowFrac * static_cast<double>(Plan.TotalInsts) /
      static_cast<double>(Plan.K));

  std::vector<SampleWindow> Windows;
  std::vector<WindowEstimator::Win> Wins;
  uint64_t PrevEnd = 0;
  for (const SampleSite &S : Sites) {
    const uint64_t Begin = Starts[S.Interval];
    // Per-sample measuring stretch: the cluster's CountedLen budget
    // split over its samples, clamped to the interval.
    uint64_t Counted = Plan.IntervalInsts[S.Interval];
    if (Spec.CountedLen) {
      // Floor of 700 so heavily-sampled clusters still measure stretches
      // long enough to amortize window-boundary effects.
      const uint64_t Share = std::max<uint64_t>(
          Spec.CountedLen / Plan.Samples[S.Cluster].size(), 700);
      Counted = std::min(Share, Counted);
    }
    const uint64_t End = Begin + Counted;
    // Warm-up prefix, clamped to the gap behind the previous window: the
    // detailed warm-up keeps priority, the cheap warming shadow takes
    // whatever budget remains.
    const uint64_t Gap = Begin - PrevEnd;
    const uint64_t Warmup = std::min(Spec.WarmupLen, Gap);
    const uint64_t Shadow = std::min(ShadowTarget, Gap - Warmup);
    Windows.push_back({Begin - Warmup - Shadow, End, Shadow});
    Wins.push_back({Shadow, Warmup, Counted, S.Cluster});
    PrevEnd = End;
  }

  // Post-stratified weighting: every interval is represented by the
  // temporally-nearest sample of its own cluster, and each window's
  // counted delta is scaled by (instructions it represents / counted
  // instructions). Inside a heterogeneous cluster this keeps a sample at
  // a phase edge from diluting the mass of the plateau members — each
  // member is accounted by its most-similar sample — and the integer
  // represented-instruction totals keep the Insts estimate exact.
  std::vector<std::vector<size_t>> ClusterWindows(Plan.K);
  for (size_t W = 0; W < Sites.size(); ++W)
    ClusterWindows[Sites[W].Cluster].push_back(W);
  std::vector<uint64_t> Represented(Sites.size(), 0);
  for (size_t I = 0; I < Plan.numIntervals(); ++I) {
    const unsigned C = static_cast<unsigned>(Plan.Assign[I]);
    size_t Best = ClusterWindows[C].front();
    uint64_t BestDist = ~uint64_t(0);
    for (size_t W : ClusterWindows[C]) {
      const uint32_t S = Sites[W].Interval;
      const uint64_t Dist =
          S > I ? static_cast<uint64_t>(S) - I : I - static_cast<uint64_t>(S);
      if (Dist < BestDist) {
        BestDist = Dist;
        Best = W;
      }
    }
    Represented[Best] += Plan.IntervalInsts[I];
  }
  std::vector<double> Factors(Sites.size());
  for (size_t W = 0; W < Sites.size(); ++W)
    Factors[W] = static_cast<double>(Represented[W]) /
                 static_cast<double>(Wins[W].Counted);

  WindowEstimator Estimator(Uarch, Scheme, Coeffs, std::move(Wins));
  RunOptions Opts = Ref;
  Opts.Sink = &Estimator;

  SampleEstimate Est;
  Est.Plan = Plan;
  Est.Run = runProgramWindowed(DP, Opts, Windows);
  Est.DetailedInsts = Estimator.deliveredInsts();
  assert(Estimator.allWindowsComplete() &&
         "sampled run ended before the planned windows");

  Estimator.estimate(Factors, Est.Uarch, Est.Report);
  return Est;
}

SampleEstimate og::estimateSampled(const DecodedProgram &DP,
                                   const RunOptions &Ref,
                                   const UarchConfig &Uarch,
                                   GatingScheme Scheme,
                                   const EnergyCoefficients &Coeffs,
                                   const SampleSpec &Spec) {
  IntervalProfiler Prof(DP, Spec.IntervalLen);
  RunOptions ProfOpts = Ref;
  ProfOpts.Sink = &Prof;
  RunResult ProfRun = runProgram(DP, ProfOpts);
  Prof.finish();
  assert(ProfRun.Status == RunStatus::Halted && "profiled run did not halt");
  (void)ProfRun;

  SamplePlan Plan = makeSamplePlan(Prof, Spec);
  return runSampled(DP, Ref, Uarch, Scheme, Coeffs, Plan, Spec);
}

double SampleErrors::maxAbs() const {
  return std::max(std::max(std::fabs(Energy), std::fabs(Cycles)),
                  std::max(std::fabs(Ipc), std::fabs(Insts)));
}

SampleErrors og::compareToExact(const SampleEstimate &Est,
                                const EnergyReport &Exact) {
  auto Rel = [](double EstV, double ExactV) {
    return ExactV != 0.0 ? (EstV - ExactV) / ExactV : 0.0;
  };
  SampleErrors E;
  E.Energy = Rel(Est.Report.TotalEnergy, Exact.TotalEnergy);
  E.Cycles = Rel(static_cast<double>(Est.Uarch.Cycles),
                 static_cast<double>(Exact.Uarch.Cycles));
  E.Ipc = Rel(Est.Uarch.ipc(), Exact.Uarch.ipc());
  E.Insts = Rel(static_cast<double>(Est.Uarch.Insts),
                static_cast<double>(Exact.Uarch.Insts));
  return E;
}
