//===- sample/IntervalProfiler.cpp -----------------------------------------==//

#include "sample/IntervalProfiler.h"

#include <algorithm>
#include <cassert>

using namespace og;

IntervalProfiler::IntervalProfiler(const DecodedProgram &DP,
                                   uint64_t IntervalLen)
    : DP(&DP), Len(IntervalLen), Cur(DP.numBlockSlots(), 0),
      LoadWrote(NumRegs, false) {
  assert(Len > 0 && "interval length must be positive");
}

void IntervalProfiler::onBatch(const DynInst *Batch, size_t N) {
  // Batches can straddle interval boundaries; the per-record walk closes
  // an interval the moment it fills, so bookkeeping is exact regardless
  // of how the engine batches the stream.
  for (size_t I = 0; I < N; ++I) {
    const DynInst &D = Batch[I];
    ++Cur[DP->blockSlot(D.Func, D.Block)];
    ++CurDepth[CallDepth < NumDepthBuckets ? CallDepth
                                           : NumDepthBuckets - 1];
    const Op Opc = D.I->Opc;
    if (Opc == Op::Jsr)
      ++CallDepth;
    else if (Opc == Op::Ret && CallDepth > 0)
      --CallDepth;
    if (Opc == Op::Ld) {
      if (LoadWrote[D.I->Ra])
        ++CurChase;
      LoadWrote[D.I->Rd] = true;
    } else if (D.WroteDest) {
      LoadWrote[D.I->Rd] = false;
    }
    if (++InInterval == Len)
      flushInterval();
  }
}

void IntervalProfiler::flushInterval() {
  Bbvs.push_back(Cur);
  Depths.push_back(CurDepth);
  Chases.push_back(CurChase);
  Insts.push_back(InInterval);
  Total += InInterval;
  std::fill(Cur.begin(), Cur.end(), 0u);
  CurDepth.fill(0u);
  CurChase = 0;
  InInterval = 0;
}

void IntervalProfiler::finish() {
  if (InInterval > 0)
    flushInterval();
}

std::vector<std::vector<double>> IntervalProfiler::normalizedBbvs() const {
  std::vector<std::vector<double>> Out;
  Out.reserve(Bbvs.size());
  for (size_t I = 0; I < Bbvs.size(); ++I) {
    const double Mass = static_cast<double>(Insts[I]);
    std::vector<double> V(Bbvs[I].size() + NumDepthBuckets + 1);
    for (size_t S = 0; S < Bbvs[I].size(); ++S)
      V[S] = static_cast<double>(Bbvs[I][S]) / Mass;
    for (size_t B = 0; B < NumDepthBuckets; ++B)
      V[Bbvs[I].size() + B] = static_cast<double>(Depths[I][B]) / Mass;
    // Pointer-chase intensity, amplified so a serial-vs-overlapped phase
    // split registers against the unit-mass BBV coordinates.
    V[Bbvs[I].size() + NumDepthBuckets] =
        4.0 * static_cast<double>(Chases[I]) / Mass;
    Out.push_back(std::move(V));
  }
  return Out;
}
