//===- sample/KMeans.h - Deterministic k-means++ clustering ------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clustering half of phase-aware sampled simulation: seeded,
/// fully deterministic k-means++ (Lloyd iterations, smallest-index tie
/// breaks, farthest-point reseeding of emptied clusters) plus the
/// SimPoint-style model-selection helpers — a sparse random projection
/// that shrinks BBVs to a handful of dimensions before clustering, and a
/// BIC score that picks the smallest k whose score reaches 90% of the
/// best across 1..MaxK. Everything draws from support/Rng (SplitMix64)
/// seeded explicitly, so a (points, seed) pair reproduces bit-identical
/// clusterings on any host — the property the sweep driver's
/// serial-vs-parallel byte-identity contract rests on.
///
//===----------------------------------------------------------------------===//

#ifndef OG_SAMPLE_KMEANS_H
#define OG_SAMPLE_KMEANS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace og {

/// Outcome of one k-means run.
struct KMeansResult {
  unsigned K = 0;
  std::vector<int> Assign; ///< per-point cluster id in [0, K)
  std::vector<std::vector<double>> Centroids;
  double Inertia = 0.0; ///< sum of squared point-to-centroid distances

  /// Points per cluster.
  std::vector<size_t> clusterSizes() const;
};

/// Squared Euclidean distance between two equal-dimension points (the
/// metric every consumer of this header clusters and elects under).
double squaredDistance(const std::vector<double> &A,
                       const std::vector<double> &B);

/// Projects \p Points into \p Dims dimensions with the Achlioptas sparse
/// random projection (entries +1/0/-1 with probability 1/6, 2/3, 1/6,
/// scaled by sqrt(3/Dims)), deterministically from \p Seed. Distances are
/// approximately preserved, which is all clustering needs; BBVs with
/// hundreds of block slots cluster an order of magnitude faster in the
/// projected space. Inputs with <= Dims dimensions are returned as-is.
std::vector<std::vector<double>>
projectPoints(const std::vector<std::vector<double>> &Points, size_t Dims,
              uint64_t Seed);

/// Clusters \p Points (all the same dimension) into \p K clusters with
/// k-means++ seeding and at most \p MaxIters Lloyd iterations. K is
/// clamped to the number of points. Deterministic in (Points, K, Seed).
KMeansResult kmeansCluster(const std::vector<std::vector<double>> &Points,
                           unsigned K, uint64_t Seed,
                           unsigned MaxIters = 64);

/// Bayesian information criterion of a clustering under the spherical
/// Gaussian model (higher is better); the SimPoint model-selection score.
double bicScore(const std::vector<std::vector<double>> &Points,
                const KMeansResult &R);

/// Runs kmeansCluster for every k in 1..MaxK and returns the smallest k
/// whose BIC reaches \p Threshold (default 0.9) of the way from the worst
/// to the best score — SimPoint's "90% of the best BIC" rule. \p Scores,
/// when given, receives the BIC of every candidate k (index k-1);
/// \p Winner, when given, receives the chosen k's clustering so callers
/// do not re-run it.
unsigned pickK(const std::vector<std::vector<double>> &Points, unsigned MaxK,
               uint64_t Seed, std::vector<double> *Scores = nullptr,
               double Threshold = 0.9, KMeansResult *Winner = nullptr);

} // namespace og

#endif // OG_SAMPLE_KMEANS_H
