//===- report/ReportSchema.cpp ---------------------------------------------==//

#include "report/ReportSchema.h"

#include "driver/ResultAggregator.h"
#include "pipeline/Pipeline.h"

using namespace og;

JsonValue og::makeReportRoot(const std::string &Kind) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", JsonValue::str("ogate-report"));
  Root.set("version", JsonValue::integer(ReportSchemaVersion));
  Root.set("kind", JsonValue::str(Kind));
  return Root;
}

bool og::checkReportRoot(const JsonValue &Root, std::string *Why) {
  auto Fail = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (!Root.isObject())
    return Fail("document is not a JSON object");
  const JsonValue *Schema = Root.get("schema");
  if (!Schema || !Schema->isString() || Schema->asString() != "ogate-report")
    return Fail("missing or wrong \"schema\" marker (want \"ogate-report\")");
  const JsonValue *Version = Root.get("version");
  if (!Version || !Version->isInteger())
    return Fail("missing \"version\"");
  if (Version->asInt() != ReportSchemaVersion)
    return Fail("schema version " + std::to_string(Version->asInt()) +
                " does not match this build's version " +
                std::to_string(ReportSchemaVersion) +
                " (regenerate with `regen-baselines`)");
  return true;
}

JsonValue og::toJson(const ExecStats &S) {
  JsonValue Counters = JsonValue::object();
  Counters.set("dyn-insts", JsonValue::integer(S.DynInsts));

  // Only classes that executed, in enum order — stable and compact.
  JsonValue ClassWidth = JsonValue::object();
  for (unsigned C = 0; C < 18; ++C) {
    uint64_t N = 0;
    for (unsigned W = 0; W < 4; ++W)
      N += S.ClassWidth[C][W];
    if (!N)
      continue;
    JsonValue Row = JsonValue::array();
    for (unsigned W = 0; W < 4; ++W)
      Row.push(JsonValue::integer(S.ClassWidth[C][W]));
    ClassWidth.set(opClassName(static_cast<OpClass>(C)), std::move(Row));
  }
  Counters.set("class-width", std::move(ClassWidth));

  JsonValue Sizes = JsonValue::array();
  for (unsigned B = 1; B <= 8; ++B)
    Sizes.push(JsonValue::integer(S.ValueSizeBytes[B]));
  Counters.set("value-size-bytes", std::move(Sizes));

  JsonValue Out = JsonValue::object();
  Out.set("counters", std::move(Counters));
  return Out;
}

JsonValue og::toJson(const UarchStats &S) {
  JsonValue Counters = JsonValue::object();
  Counters.set("insts", JsonValue::integer(S.Insts));
  Counters.set("cycles", JsonValue::integer(S.Cycles));
  Counters.set("fetch-groups", JsonValue::integer(S.FetchGroups));
  Counters.set("icache-misses", JsonValue::integer(S.ICacheMisses));
  Counters.set("dl1-accesses", JsonValue::integer(S.DL1Accesses));
  Counters.set("dl1-misses", JsonValue::integer(S.DL1Misses));
  Counters.set("l2-accesses", JsonValue::integer(S.L2Accesses));
  Counters.set("l2-misses", JsonValue::integer(S.L2Misses));
  Counters.set("branches", JsonValue::integer(S.Branches));
  Counters.set("mispredicts", JsonValue::integer(S.Mispredicts));

  JsonValue Metrics = JsonValue::object();
  Metrics.set("ipc", JsonValue::number(S.ipc()));

  JsonValue Out = JsonValue::object();
  Out.set("counters", std::move(Counters));
  Out.set("metrics", std::move(Metrics));
  return Out;
}

JsonValue og::toJson(const EnergyReport &R) {
  JsonValue Metrics = JsonValue::object();
  Metrics.set("total-energy", JsonValue::number(R.TotalEnergy));
  Metrics.set("ed2", JsonValue::number(R.ed2()));
  JsonValue PerStructure = JsonValue::object();
  for (unsigned S = 0; S < NumStructures; ++S)
    PerStructure.set(structureName(static_cast<Structure>(S)),
                     JsonValue::number(R.PerStructure[S]));
  Metrics.set("per-structure", std::move(PerStructure));

  JsonValue Out = JsonValue::object();
  Out.set("scheme", JsonValue::str(gatingSchemeName(R.Scheme)));
  Out.set("metrics", std::move(Metrics));
  return Out;
}

JsonValue og::toJson(const NarrowingReport &R) {
  JsonValue Counters = JsonValue::object();
  JsonValue Widths = JsonValue::array();
  for (unsigned W = 0; W < 4; ++W)
    Widths.push(JsonValue::integer(R.StaticWidth[W]));
  Counters.set("static-width", std::move(Widths));
  Counters.set("width-bearing", JsonValue::integer(R.NumWidthBearing));
  Counters.set("narrowed", JsonValue::integer(R.NumNarrowed));
  Counters.set("insts", JsonValue::integer(R.NumInsts));

  JsonValue Out = JsonValue::object();
  Out.set("counters", std::move(Counters));
  return Out;
}

namespace {

/// The "opt" counters group: analysis-cache traffic in registration
/// (first-touch) order, which is deterministic for a deterministic
/// transform run.
JsonValue optStatsToJson(const StatisticSet &S) {
  JsonValue Opt = JsonValue::object();
  for (const auto &E : S.entries())
    Opt.set(E.first, JsonValue::integer(static_cast<int64_t>(E.second)));
  return Opt;
}

} // namespace

JsonValue og::engineToJson(const EngineCounters &E, uint64_t DynInsts) {
  JsonValue Counters = JsonValue::object();
  Counters.set("superblocks",
               JsonValue::integer(static_cast<int64_t>(E.SuperblocksFormed)));
  Counters.set("entries",
               JsonValue::integer(static_cast<int64_t>(E.SuperblockEntries)));
  Counters.set("passes",
               JsonValue::integer(static_cast<int64_t>(E.SuperblockPasses)));
  Counters.set("fused-insts",
               JsonValue::integer(static_cast<int64_t>(E.SuperblockInsts)));
  Counters.set("side-exits",
               JsonValue::integer(static_cast<int64_t>(E.SideExits)));
  Counters.set("window-fissions",
               JsonValue::integer(static_cast<int64_t>(E.WindowFissions)));
  JsonValue Metrics = JsonValue::object();
  Metrics.set("coverage", JsonValue::number(E.coverage(DynInsts)));
  JsonValue Out = JsonValue::object();
  Out.set("counters", std::move(Counters));
  Out.set("metrics", std::move(Metrics));
  return Out;
}

JsonValue og::sampleToJson(const PipelineSampleInfo &S) {
  JsonValue Out = JsonValue::object();
  Out.set("interval-len", JsonValue::integer(static_cast<int64_t>(S.IntervalLen)));
  Out.set("intervals", JsonValue::integer(static_cast<int64_t>(S.Intervals)));
  Out.set("k", JsonValue::integer(S.K));
  Out.set("detailed-insts",
          JsonValue::integer(static_cast<int64_t>(S.DetailedInsts)));
  JsonValue Weights = JsonValue::array();
  for (double W : S.Weights)
    Weights.push(JsonValue::number(W));
  Out.set("weights", std::move(Weights));
  JsonValue Reps = JsonValue::array();
  for (uint32_t R : S.Reps)
    Reps.push(JsonValue::integer(R));
  Out.set("reps", std::move(Reps));
  Out.set("est-error", JsonValue::number(S.EstError));
  return Out;
}

JsonValue og::cellToJson(const std::string &Workload, const std::string &Label,
                         const PipelineResult &R,
                         const StatisticSet *OptStats) {
  JsonValue Counters = JsonValue::object();
  Counters.set("dyn-insts", JsonValue::integer(R.RefStats.DynInsts));
  Counters.set("cycles", JsonValue::integer(R.Report.Uarch.Cycles));
  Counters.set("narrowed-opcodes", JsonValue::integer(R.Narrowing.NumNarrowed));
  Counters.set("width-bearing-opcodes",
               JsonValue::integer(R.Narrowing.NumWidthBearing));
  Counters.set("branches", JsonValue::integer(R.Report.Uarch.Branches));
  Counters.set("mispredicts", JsonValue::integer(R.Report.Uarch.Mispredicts));
  Counters.set("dl1-misses", JsonValue::integer(R.Report.Uarch.DL1Misses));
  Counters.set("l2-misses", JsonValue::integer(R.Report.Uarch.L2Misses));

  JsonValue Metrics = JsonValue::object();
  Metrics.set("ipc", JsonValue::number(R.Report.Uarch.ipc()));
  Metrics.set("energy", JsonValue::number(R.Report.TotalEnergy));
  Metrics.set("ed2", JsonValue::number(R.Report.ed2()));
  Metrics.set("dyn-specialized-frac", JsonValue::number(R.DynSpecializedFrac));
  Metrics.set("dyn-guard-frac", JsonValue::number(R.DynGuardFrac));

  JsonValue Out = JsonValue::object();
  Out.set("workload", JsonValue::str(Workload));
  Out.set("config", JsonValue::str(Label));
  Out.set("counters", std::move(Counters));
  Out.set("metrics", std::move(Metrics));
  if (OptStats && !OptStats->entries().empty())
    Out.set("opt", optStatsToJson(*OptStats));
  if (R.Sample.Used)
    Out.set("sample", sampleToJson(R.Sample));
  if (!R.Engine.empty())
    Out.set("engine", engineToJson(R.Engine, R.RefStats.DynInsts));
  return Out;
}

JsonValue og::sweepCellToJson(const ResultAggregator::Cell &C,
                              bool IncludeOptCounters,
                              bool IncludeEngineCounters) {
  JsonValue Counters = JsonValue::object();
  Counters.set("dyn-insts", JsonValue::integer(C.DynInsts));
  Counters.set("cycles", JsonValue::integer(C.Cycles));
  Counters.set("narrowed-opcodes", JsonValue::integer(C.Narrowed));
  Counters.set("width-bearing-opcodes", JsonValue::integer(C.WidthBearing));

  JsonValue Metrics = JsonValue::object();
  Metrics.set("ipc", JsonValue::number(C.Ipc));
  Metrics.set("energy", JsonValue::number(C.Energy));
  Metrics.set("ed2", JsonValue::number(C.Ed2));

  JsonValue Cell = JsonValue::object();
  Cell.set("workload", JsonValue::str(C.Workload));
  Cell.set("config", JsonValue::str(C.Label));
  Cell.set("counters", std::move(Counters));
  Cell.set("metrics", std::move(Metrics));
  if (IncludeOptCounters && !C.Opt.entries().empty())
    Cell.set("opt", optStatsToJson(C.Opt));
  if (C.Sample.Used)
    Cell.set("sample", sampleToJson(C.Sample));
  if (IncludeEngineCounters && !C.Engine.empty())
    Cell.set("engine", engineToJson(C.Engine, C.DynInsts));
  return Cell;
}

namespace {

/// Field accessors for sweepCellFromJson: each returns false after
/// filling \p Why with the dotted path of the offending field.
bool getU64(const JsonValue &Obj, const char *Key, uint64_t &Out,
            std::string &Why) {
  const JsonValue *V = Obj.get(Key);
  if (!V || !V->isInteger() || V->asInt() < 0) {
    Why = Key;
    return false;
  }
  Out = static_cast<uint64_t>(V->asInt());
  return true;
}

bool getF64(const JsonValue &Obj, const char *Key, double &Out,
            std::string &Why) {
  const JsonValue *V = Obj.get(Key);
  if (!V || !V->isNumber()) {
    Why = Key;
    return false;
  }
  Out = V->asNumber();
  return true;
}

bool getStr(const JsonValue &Obj, const char *Key, std::string &Out,
            std::string &Why) {
  const JsonValue *V = Obj.get(Key);
  if (!V || !V->isString()) {
    Why = Key;
    return false;
  }
  Out = V->asString();
  return true;
}

} // namespace

Expected<ResultAggregator::Cell> og::sweepCellFromJson(const JsonValue &V) {
  auto Fail = [](const std::string &Field) {
    return makeError<ResultAggregator::Cell>(
        "sweep cell: missing or mis-typed \"" + Field + "\"");
  };
  if (!V.isObject())
    return makeError<ResultAggregator::Cell>("sweep cell is not an object");

  ResultAggregator::Cell C;
  std::string Why;
  if (!getStr(V, "workload", C.Workload, Why) ||
      !getStr(V, "config", C.Label, Why))
    return Fail(Why);

  const JsonValue *Counters = V.get("counters");
  if (!Counters || !Counters->isObject())
    return Fail("counters");
  if (!getU64(*Counters, "dyn-insts", C.DynInsts, Why) ||
      !getU64(*Counters, "cycles", C.Cycles, Why) ||
      !getU64(*Counters, "narrowed-opcodes", C.Narrowed, Why) ||
      !getU64(*Counters, "width-bearing-opcodes", C.WidthBearing, Why))
    return Fail("counters." + Why);

  const JsonValue *Metrics = V.get("metrics");
  if (!Metrics || !Metrics->isObject())
    return Fail("metrics");
  if (!getF64(*Metrics, "ipc", C.Ipc, Why) ||
      !getF64(*Metrics, "energy", C.Energy, Why) ||
      !getF64(*Metrics, "ed2", C.Ed2, Why))
    return Fail("metrics." + Why);

  if (const JsonValue *Opt = V.get("opt")) {
    if (!Opt->isObject())
      return Fail("opt");
    for (const auto &M : Opt->members()) {
      if (!M.second.isInteger() || M.second.asInt() < 0)
        return Fail("opt." + M.first);
      C.Opt.add(M.first, static_cast<uint64_t>(M.second.asInt()));
    }
  }

  if (const JsonValue *Sample = V.get("sample")) {
    if (!Sample->isObject())
      return Fail("sample");
    C.Sample.Used = true;
    uint64_t K = 0;
    if (!getU64(*Sample, "interval-len", C.Sample.IntervalLen, Why) ||
        !getU64(*Sample, "intervals", C.Sample.Intervals, Why) ||
        !getU64(*Sample, "k", K, Why) ||
        !getU64(*Sample, "detailed-insts", C.Sample.DetailedInsts, Why) ||
        !getF64(*Sample, "est-error", C.Sample.EstError, Why))
      return Fail("sample." + Why);
    C.Sample.K = static_cast<unsigned>(K);
    const JsonValue *Weights = Sample->get("weights");
    if (!Weights || !Weights->isArray())
      return Fail("sample.weights");
    for (size_t I = 0; I < Weights->size(); ++I) {
      if (!Weights->at(I).isNumber())
        return Fail("sample.weights");
      C.Sample.Weights.push_back(Weights->at(I).asNumber());
    }
    const JsonValue *Reps = Sample->get("reps");
    if (!Reps || !Reps->isArray())
      return Fail("sample.reps");
    for (size_t I = 0; I < Reps->size(); ++I) {
      if (!Reps->at(I).isInteger() || Reps->at(I).asInt() < 0)
        return Fail("sample.reps");
      C.Sample.Reps.push_back(static_cast<uint32_t>(Reps->at(I).asInt()));
    }
  }

  if (const JsonValue *Engine = V.get("engine")) {
    // "metrics".coverage is derived from the counters and DynInsts;
    // re-serialization recomputes it, so only the counters are read back.
    if (!Engine->isObject())
      return Fail("engine");
    const JsonValue *EC = Engine->get("counters");
    if (!EC || !EC->isObject())
      return Fail("engine.counters");
    if (!getU64(*EC, "superblocks", C.Engine.SuperblocksFormed, Why) ||
        !getU64(*EC, "entries", C.Engine.SuperblockEntries, Why) ||
        !getU64(*EC, "passes", C.Engine.SuperblockPasses, Why) ||
        !getU64(*EC, "fused-insts", C.Engine.SuperblockInsts, Why) ||
        !getU64(*EC, "side-exits", C.Engine.SideExits, Why) ||
        !getU64(*EC, "window-fissions", C.Engine.WindowFissions, Why))
      return Fail("engine.counters." + Why);
  }

  return C;
}

JsonValue og::sweepToJson(const ResultAggregator &Agg,
                          const std::string &SweepKind, double Scale,
                          bool IncludeOptCounters, const SampleSpec *Sample,
                          bool IncludeEngineCounters) {
  JsonValue Root = makeReportRoot("sweep");
  Root.set("sweep", JsonValue::str(SweepKind));
  Root.set("scale", JsonValue::number(Scale));
  if (Sample && Sample->enabled()) {
    JsonValue Spec = JsonValue::object();
    Spec.set("interval-len",
             JsonValue::integer(static_cast<int64_t>(Sample->IntervalLen)));
    Spec.set("k", JsonValue::integer(Sample->K));
    Root.set("sample", std::move(Spec));
  }

  JsonValue Cells = JsonValue::array();
  for (const ResultAggregator::Cell &C : Agg.sortedCells())
    Cells.push(sweepCellToJson(C, IncludeOptCounters, IncludeEngineCounters));
  Root.set("cells", std::move(Cells));

  JsonValue Counters = JsonValue::object();
  const StatisticSet Stats = Agg.stats();
  for (const auto &E : Stats.entries())
    Counters.set(E.first, JsonValue::integer(E.second));
  Root.set("counters", std::move(Counters));
  return Root;
}
