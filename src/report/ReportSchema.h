//===- report/ReportSchema.h - Structured result reports ---------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable form of everything the tools and benches print:
/// interpreter statistics, out-of-order timing + energy reports, sweep
/// aggregates and bench harness cells, all as schema-versioned JSON
/// (support/Json.h). The schema splits every leaf into one of two
/// sections, and `ogate-report diff` keys its comparison rules off that
/// split:
///
///  - "counters": deterministic integers (dynamic instructions, cycles,
///    cache misses, histogram buckets). Compared exactly; any drift is a
///    correctness regression, not noise.
///  - "metrics": derived floating-point values (IPC, energy, ED^2) and
///    wall-clock measurements (MIPS). Compared under a relative
///    tolerance; cross-compiler FP rounding and machine noise live here.
///
/// Every document carries {"schema": "ogate-report", "version": N} so
/// baselines fail loudly instead of drifting silently when the layout
/// changes. Bump ReportSchemaVersion on any incompatible change and
/// regenerate baselines/ with the `regen-baselines` target.
///
//===----------------------------------------------------------------------===//

#ifndef OG_REPORT_REPORTSCHEMA_H
#define OG_REPORT_REPORTSCHEMA_H

#include "driver/ResultAggregator.h"
#include "support/Json.h"

#include <string>

namespace og {

class StatisticSet;
struct EnergyReport;
struct ExecStats;
struct NarrowingReport;
struct PipelineResult;
struct UarchStats;

/// Current schema version; serialized into every report document.
constexpr int64_t ReportSchemaVersion = 1;

/// A fresh report root: {"schema": "ogate-report", "version": ...,
/// "kind": \p Kind}. Callers append their payload to it.
JsonValue makeReportRoot(const std::string &Kind);

/// True when \p Root is an ogate-report document of the current schema
/// version; otherwise fills \p Why.
bool checkReportRoot(const JsonValue &Root, std::string *Why = nullptr);

/// Functional-run statistics: a "counters" payload with the dynamic
/// instruction count, the per-class width histogram (only classes that
/// executed, in enum order) and the value-size histogram of Figure 12.
JsonValue toJson(const ExecStats &S);

/// Timing-model statistics: "counters" (cycles, branches, misses...) plus
/// a "metrics" object holding the derived IPC.
JsonValue toJson(const UarchStats &S);

/// Energy accounting: scheme name, per-structure energies and the total
/// + ED^2, all under "metrics".
JsonValue toJson(const EnergyReport &R);

/// Static narrowing counters (width histogram, narrowed / width-bearing /
/// total instruction counts).
JsonValue toJson(const NarrowingReport &R);

struct EngineCounters;
struct PipelineSampleInfo;
struct SampleSpec;

/// The optional "engine" group of a cell: dispatch/superblock counters
/// of the ref run ("counters": superblocks, entries, passes, fused
/// instructions, side exits, window fissions) plus the derived coverage
/// fraction ("metrics"). \p DynInsts is the run's dynamic instruction
/// count the coverage is taken against.
JsonValue engineToJson(const EngineCounters &E, uint64_t DynInsts);

/// The optional "sample" group of a sampled cell: interval length and
/// count, k, per-cluster weights and representatives, detailed
/// instruction count and the BBV-dispersion error proxy. Its presence is
/// the marker report/Baseline.h keys estimated-counter tolerance off.
JsonValue sampleToJson(const PipelineSampleInfo &S);

/// One experiment cell (workload x configuration) of a sweep or bench
/// harness: {"workload", "config", "counters", "metrics"} — plus an
/// "opt" counters group (opt/AnalysisManager cache traffic) when
/// \p OptStats is given and non-empty, a "sample" group when the cell
/// was estimated by sampled simulation, and an "engine" group when the
/// run exercised the superblock fast path (bench artifacts have no
/// shape-pinned baseline, so both ride along unconditionally).
JsonValue cellToJson(const std::string &Workload, const std::string &Label,
                     const PipelineResult &R,
                     const StatisticSet *OptStats = nullptr);

/// One reduced sweep cell (ResultAggregator::Cell) in exactly the shape
/// sweepToJson embeds in its "cells" array: {"workload", "config",
/// "counters", "metrics"} plus the optional "opt" / "sample" / "engine"
/// groups under the same inclusion rules. Exposed so the sweep service's
/// persistent cache (service/ResultCache.h) stores cells in the document
/// shape — a cached cell re-serializes byte-identically to a computed
/// one, which is what makes warm-cache sweep documents byte-equal to
/// cold ones.
JsonValue sweepCellToJson(const ResultAggregator::Cell &C,
                          bool IncludeOptCounters = false,
                          bool IncludeEngineCounters = false);

/// Strict inverse of sweepCellToJson (with both optional groups
/// included): rebuilds the reduced cell from a cell document. The
/// round-trip is value-exact — integers parse back exactly and doubles
/// are shortest-round-trip (support/Json.h) — so serialize(parse(doc))
/// == doc. The derived "engine" coverage metric and the "metrics"
/// specialization fractions are recomputed/ignored as appropriate; any
/// missing or mis-typed required field is an error naming the field.
Expected<ResultAggregator::Cell> sweepCellFromJson(const JsonValue &V);

/// A whole sweep: kind "sweep" root + sorted "cells" + the aggregate
/// "counters". Cells are sorted by (workload, config) exactly like the
/// printed table, so the document bytes are independent of completion
/// order and worker count. \p IncludeOptCounters adds each cell's "opt"
/// group (`ogate-sim --sweep --opt-stats`); it defaults off because the
/// checked-in baselines predate the group and `ogate-report diff` treats
/// an added key as a finding. \p Sample, when given and enabled, records
/// the sweep-level sampling spec in a root "sample" group; per-cell
/// "sample" groups ride on the cells themselves (exact sweeps emit
/// neither, keeping their documents byte-identical to the pre-sampling
/// shape). \p IncludeEngineCounters adds each cell's "engine" group
/// (`ogate-sim --sweep --engine-stats`), off by default for the same
/// baseline-stability reason as the "opt" group.
JsonValue sweepToJson(const ResultAggregator &Agg, const std::string &SweepKind,
                      double Scale, bool IncludeOptCounters = false,
                      const SampleSpec *Sample = nullptr,
                      bool IncludeEngineCounters = false);

} // namespace og

#endif // OG_REPORT_REPORTSCHEMA_H
