//===- report/Baseline.h - Tolerance-checked report diffing ------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares a fresh report document against a checked-in baseline and
/// classifies every divergence, the engine behind `ogate-report diff`
/// and the CI perf-smoke gate. The comparison is schema-directed:
///
///  - leaves under a "metrics" object compare under a relative tolerance
///    (|a-b| <= tol% of max(|a|,|b|)) — derived FP values and wall-clock
///    measurements are allowed to breathe;
///  - every other leaf (the "counters" sections, labels, structure)
///    compares exactly — a one-instruction drift in a deterministic
///    counter is a regression, not noise;
///  - arrays of {workload, config} cells are matched by that key, not by
///    position, so a missing or extra cell is reported by name;
///  - an object in the current report that carries a "sample" marker the
///    baseline lacks is a sampled estimate held against an exact
///    baseline: its *estimated* counters (cycles, branches, cache
///    events — what the windowed estimator scales) compare under the
///    metrics tolerance, its functional counters (dyn-insts,
///    narrowed-opcodes, ...) stay exact — sampling never changes them —
///    and the marker itself is not a finding. This is what lets a
///    sampled sweep gate against the checked-in exact baseline with a
///    widened --tolerance without losing functional-drift detection.
///
//===----------------------------------------------------------------------===//

#ifndef OG_REPORT_BASELINE_H
#define OG_REPORT_BASELINE_H

#include "support/Json.h"

#include <string>
#include <vector>

namespace og {

/// Knobs of a baseline comparison.
struct DiffOptions {
  /// Relative tolerance, in percent, applied to leaves under "metrics".
  double TolerancePct = 2.0;
};

/// One divergence between baseline and current.
struct DiffFinding {
  std::string Path; ///< "cells[compress/vrp].counters.cycles"
  std::string What; ///< human-readable description with both values
};

/// Outcome of one comparison.
struct DiffResult {
  /// All divergences, in document order. Empty <=> match.
  std::vector<DiffFinding> Findings;
  /// Leaves compared (so "0 differences" can be told from "compared
  /// nothing" in CI logs).
  size_t LeavesCompared = 0;

  bool ok() const { return Findings.empty(); }
};

/// Compares \p Current against \p Baseline under \p Opts. Both documents
/// must pass checkReportRoot first; this function only walks values.
DiffResult diffReports(const JsonValue &Baseline, const JsonValue &Current,
                       const DiffOptions &Opts = DiffOptions());

} // namespace og

#endif // OG_REPORT_BASELINE_H
