//===- report/Baseline.cpp -------------------------------------------------==//

#include "report/Baseline.h"

#include <cmath>
#include <cstdlib>

using namespace og;

namespace {

/// Stateful walker so the options and findings don't thread through every
/// signature.
class Differ {
public:
  Differ(const DiffOptions &Opts, DiffResult &Out) : Opts(Opts), Out(Out) {}

  void walk(const std::string &Path, const JsonValue &Base,
            const JsonValue &Cur, bool InMetrics) {
    if (Base.kind() != Cur.kind() &&
        !(Base.isNumber() && Cur.isNumber())) {
      report(Path, "kind changed: baseline " + kindName(Base) + ", current " +
                       kindName(Cur));
      return;
    }
    switch (Base.kind()) {
    case JsonValue::Kind::Null:
      ++Out.LeavesCompared;
      return;
    case JsonValue::Kind::Bool:
      ++Out.LeavesCompared;
      if (Base.asBool() != Cur.asBool())
        report(Path, std::string("baseline ") +
                         (Base.asBool() ? "true" : "false") + ", current " +
                         (Cur.asBool() ? "true" : "false"));
      return;
    case JsonValue::Kind::Number:
      compareNumbers(Path, Base, Cur, InMetrics);
      return;
    case JsonValue::Kind::String:
      ++Out.LeavesCompared;
      if (Base.asString() != Cur.asString())
        report(Path, "baseline \"" + Base.asString() + "\", current \"" +
                         Cur.asString() + "\"");
      return;
    case JsonValue::Kind::Array:
      compareArrays(Path, Base, Cur, InMetrics);
      return;
    case JsonValue::Kind::Object:
      compareObjects(Path, Base, Cur, InMetrics);
      return;
    }
  }

private:
  static std::string kindName(const JsonValue &V) {
    switch (V.kind()) {
    case JsonValue::Kind::Null:
      return "null";
    case JsonValue::Kind::Bool:
      return "bool";
    case JsonValue::Kind::Number:
      return "number";
    case JsonValue::Kind::String:
      return "string";
    case JsonValue::Kind::Array:
      return "array";
    case JsonValue::Kind::Object:
      return "object";
    }
    return "?";
  }

  void report(const std::string &Path, const std::string &What) {
    Out.Findings.push_back({Path, What});
  }

  void compareNumbers(const std::string &Path, const JsonValue &Base,
                      const JsonValue &Cur, bool InMetrics) {
    ++Out.LeavesCompared;
    if (!InMetrics) {
      // Counter discipline: integerness and value must both hold.
      if (Base.isInteger() != Cur.isInteger() ||
          (Base.isInteger() ? Base.asInt() != Cur.asInt()
                            : JsonValue::formatDouble(Base.asNumber()) !=
                                  JsonValue::formatDouble(Cur.asNumber())))
        report(Path, "exact mismatch: baseline " + numStr(Base) +
                         ", current " + numStr(Cur));
      return;
    }
    double A = Base.asNumber(), B = Cur.asNumber();
    if (A == B)
      return;
    double Mag = std::max(std::fabs(A), std::fabs(B));
    double Rel = Mag > 0 ? std::fabs(A - B) / Mag : 0.0;
    if (Rel > Opts.TolerancePct / 100.0)
      report(Path, "beyond " + JsonValue::formatDouble(Opts.TolerancePct) +
                       "% tolerance: baseline " + numStr(Base) + ", current " +
                       numStr(Cur) + " (" +
                       JsonValue::formatDouble(100.0 * Rel) + "% off)");
  }

  static std::string numStr(const JsonValue &V) {
    return V.isInteger() ? std::to_string(V.asInt())
                         : JsonValue::formatDouble(V.asNumber());
  }

  /// "workload/config" when \p V is a cell-shaped object, else "".
  static std::string cellKey(const JsonValue &V) {
    const JsonValue *W = V.get("workload");
    const JsonValue *C = V.get("config");
    if (W && C && W->isString() && C->isString())
      return W->asString() + "/" + C->asString();
    return std::string();
  }

  static bool isCellArray(const JsonValue &V) {
    if (!V.isArray() || V.size() == 0)
      return false;
    for (size_t J = 0; J < V.size(); ++J)
      if (cellKey(V.at(J)).empty())
        return false;
    return true;
  }

  void compareArrays(const std::string &Path, const JsonValue &Base,
                     const JsonValue &Cur, bool InMetrics) {
    if (isCellArray(Base) && isCellArray(Cur)) {
      // Key cells by workload/config so a dropped or added cell reads as
      // exactly that, not as every later index mismatching.
      for (size_t J = 0; J < Base.size(); ++J) {
        const std::string Key = cellKey(Base.at(J));
        const JsonValue *Match = nullptr;
        for (size_t K = 0; K < Cur.size(); ++K)
          if (cellKey(Cur.at(K)) == Key) {
            Match = &Cur.at(K);
            break;
          }
        if (!Match) {
          report(Path + "[" + Key + "]", "cell missing from current report");
          continue;
        }
        walk(Path + "[" + Key + "]", Base.at(J), *Match, InMetrics);
      }
      for (size_t K = 0; K < Cur.size(); ++K) {
        const std::string Key = cellKey(Cur.at(K));
        bool Known = false;
        for (size_t J = 0; J < Base.size(); ++J)
          Known = Known || cellKey(Base.at(J)) == Key;
        if (!Known)
          report(Path + "[" + Key + "]", "cell not present in baseline");
      }
      return;
    }
    if (Base.size() != Cur.size()) {
      report(Path, "array length changed: baseline " +
                       std::to_string(Base.size()) + ", current " +
                       std::to_string(Cur.size()));
      return;
    }
    for (size_t J = 0; J < Base.size(); ++J)
      walk(Path + "[" + std::to_string(J) + "]", Base.at(J), Cur.at(J),
           InMetrics);
  }

  /// Counter keys whose values are estimates in a sampled document: the
  /// timing/event quantities the windowed estimator scales up. The
  /// functional counters (dyn-insts, narrowed-opcodes, ...) stay exact
  /// even in sampled runs — the subsystem's contract — so they keep
  /// exact-comparison discipline there too.
  static bool isEstimatedCounter(const std::string &Key) {
    return Key == "insts" || Key == "cycles" || Key == "sweep.cycles" ||
           Key == "fetch-groups" || Key == "branches" ||
           Key == "mispredicts" || Key == "icache-misses" ||
           Key == "dl1-accesses" || Key == "dl1-misses" ||
           Key == "l2-accesses" || Key == "l2-misses";
  }

  /// The "counters" object of a sampled subtree held against an exact
  /// baseline: estimated keys compare under the metrics tolerance,
  /// everything else stays exact.
  void compareSampledCounters(const std::string &Path, const JsonValue &Base,
                              const JsonValue &Cur) {
    if (!Base.isObject() || !Cur.isObject()) {
      walk(Path, Base, Cur, /*InMetrics=*/false);
      return;
    }
    for (const auto &M : Base.members()) {
      const std::string Sub = Path.empty() ? M.first : Path + "." + M.first;
      const JsonValue *Other = Cur.get(M.first);
      if (!Other) {
        report(Sub, "key missing from current report");
        continue;
      }
      walk(Sub, M.second, *Other, isEstimatedCounter(M.first));
    }
    for (const auto &M : Cur.members())
      if (!Base.get(M.first))
        report(Path.empty() ? M.first : Path + "." + M.first,
               "key not present in baseline");
  }

  void compareObjects(const std::string &Path, const JsonValue &Base,
                      const JsonValue &Cur, bool InMetrics) {
    // A current-side "sample" marker absent from the baseline means a
    // sampled estimate is being held against an exact baseline: the
    // subtree's estimated counters inherit the metrics tolerance (its
    // exact ones keep exact discipline), and the marker itself is
    // expected, not a finding.
    const bool SampledVsExact = !Base.get("sample") && Cur.get("sample");
    for (const auto &M : Base.members()) {
      const std::string Sub = Path.empty() ? M.first : Path + "." + M.first;
      const JsonValue *Other = Cur.get(M.first);
      if (!Other) {
        report(Sub, "key missing from current report");
        continue;
      }
      if (SampledVsExact && M.first == "counters" && !InMetrics) {
        compareSampledCounters(Sub, M.second, *Other);
        continue;
      }
      walk(Sub, M.second, *Other, InMetrics || M.first == "metrics");
    }
    for (const auto &M : Cur.members())
      if (!Base.get(M.first) && !(SampledVsExact && M.first == "sample"))
        report(Path.empty() ? M.first : Path + "." + M.first,
               "key not present in baseline");
  }

  const DiffOptions &Opts;
  DiffResult &Out;
};

} // namespace

DiffResult og::diffReports(const JsonValue &Baseline, const JsonValue &Current,
                           const DiffOptions &Opts) {
  DiffResult R;
  Differ(Opts, R).walk("", Baseline, Current, /*InMetrics=*/false);
  return R;
}
