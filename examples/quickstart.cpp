//===- examples/quickstart.cpp - Five-minute tour --------------------------==//
//
// Builds a small program with the C++ builder API, runs Value Range
// Propagation on it, shows the narrowed opcodes, and compares baseline vs
// software-gated energy on the out-of-order model.
//
// Run: build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "asm/Disassembler.h"
#include "pipeline/Pipeline.h"
#include "program/Builder.h"
#include "vrp/Narrowing.h"

#include <iostream>

using namespace og;

int main() {
  // A toy kernel: for (i = 0; i < 100; i++) sum += table[i] & 0x0F;
  ProgramBuilder PB;
  uint64_t Table = PB.addZeroData(128);
  FunctionBuilder &F = PB.beginFunction("main");
  F.block("entry");
  F.ldi(RegT0, 0); // i
  F.ldi(RegT1, 0); // sum
  F.ldi(RegT2, static_cast<int64_t>(Table));
  F.block("loop");
  F.add(RegT3, RegT2, RegT0);
  F.ld(Width::B, RegT4, RegT3, 0);
  F.andi(RegT4, RegT4, 0x0F); // only the low nibble is useful
  F.add(RegT1, RegT1, RegT4);
  F.addi(RegT0, RegT0, 1);
  F.cmpltImm(RegT5, RegT0, 100);
  F.bne(RegT5, "loop", "done");
  F.block("done");
  F.out(RegT1);
  F.halt();
  Program P = PB.finish();

  std::cout << "=== Original program ===\n";
  disassembleProgram(P, std::cout);

  // Narrow opcodes with the paper's proposed VRP (ranges + useful widths).
  Program Narrowed = P;
  NarrowingReport Report = narrowProgram(Narrowed);
  std::cout << "=== After VRP (" << Report.NumNarrowed << " of "
            << Report.NumWidthBearing << " opcodes narrowed) ===\n";
  disassembleProgram(Narrowed, std::cout);

  // Output equivalence: the narrowed binary must behave identically.
  // Each binary is flattened into a DecodedProgram once; the decode is
  // reusable for any number of runs of the same program.
  DecodedProgram OrigDecode(P), NarrowDecode(Narrowed);
  RunResult Before = runProgram(OrigDecode, RunOptions());
  RunResult After = runProgram(NarrowDecode, RunOptions());
  std::cout << "outputs match: "
            << (Before.Output == After.Output ? "yes" : "NO") << "\n\n";

  // Energy on a real workload through the full pipeline.
  Workload W = makeWorkload("compress", /*Scale=*/0.2);

  PipelineConfig Baseline;
  Baseline.Sw = SoftwareMode::None;
  Baseline.Scheme = GatingScheme::None;
  PipelineResult Base = runPipeline(W, Baseline);

  PipelineConfig Gated;
  Gated.Sw = SoftwareMode::Vrp;
  Gated.Scheme = GatingScheme::Software;
  Gated.CheckOutputEquivalence = true;
  PipelineResult Vrp = runPipeline(W, Gated);

  std::cout << "compress baseline : " << Base.Report.Uarch.Cycles
            << " cycles, energy " << Base.Report.TotalEnergy << "\n";
  std::cout << "compress VRP      : " << Vrp.Report.Uarch.Cycles
            << " cycles, energy " << Vrp.Report.TotalEnergy << "\n";
  std::cout << "energy saving     : "
            << 100.0 * Vrp.Report.energySaving(Base.Report) << "%\n";
  std::cout << "ED^2 saving       : "
            << 100.0 * Vrp.Report.ed2Saving(Base.Report) << "%\n";
  return 0;
}
