//===- examples/hw_sw_compare.cpp - Section 4.6/4.7 trade-offs -------------==//
//
// Compares all operand-gating schemes on one workload: software opcode
// widths (VRP/VRS), hardware significance/size compression, and the
// cooperative combination — the paper's Section 4.7 trade-off discussion
// in one table.
//
// Run: build/examples/hw_sw_compare [workload] (default: gcc)
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "support/Table.h"

#include <iostream>

using namespace og;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "gcc";
  Workload W = makeWorkload(Name, 0.25);

  struct Row {
    const char *Label;
    SoftwareMode Sw;
    GatingScheme Scheme;
  };
  const Row Rows[] = {
      {"software VRP", SoftwareMode::Vrp, GatingScheme::Software},
      {"software VRS", SoftwareMode::Vrs, GatingScheme::Software},
      {"hw size compression", SoftwareMode::None, GatingScheme::HwSize},
      {"hw significance", SoftwareMode::None, GatingScheme::HwSignificance},
      {"combined VRP + hw", SoftwareMode::Vrp, GatingScheme::Combined},
      {"combined VRS + hw", SoftwareMode::Vrs, GatingScheme::Combined},
  };

  // One decode of the original binary serves every cell that runs it
  // (the baseline and the pure-hardware schemes).
  DecodedProgram BaseDecode(W.Prog);

  PipelineConfig BaseCfg;
  BaseCfg.Sw = SoftwareMode::None;
  BaseCfg.Scheme = GatingScheme::None;
  PipelineResult Base = runPipeline(W, BaseCfg, &BaseDecode);

  TextTable T({"scheme", "energy saving", "time saving", "ED^2 saving"});
  for (const Row &R : Rows) {
    PipelineConfig C;
    C.Sw = R.Sw;
    C.Scheme = R.Scheme;
    PipelineResult P = runPipeline(W, C, &BaseDecode);
    T.addRow({R.Label, TextTable::pct(P.Report.energySaving(Base.Report)),
              TextTable::pct(P.Report.timeSaving(Base.Report)),
              TextTable::pct(P.Report.ed2Saving(Base.Report))});
  }
  std::cout << "workload: " << Name << "\n\n";
  T.print(std::cout);
  std::cout
      << "\nSection 4.7 in one line: software needs ISA opcodes but almost\n"
         "no hardware; hardware needs tags and wider savings reach; only\n"
         "power-critical designs pay for both to get the extra reduction.\n";
  return 0;
}
