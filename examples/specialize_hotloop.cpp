//===- examples/specialize_hotloop.cpp - VRS walkthrough -------------------==//
//
// Shows Value Range Specialization end to end on the classic shape it is
// built for: a hot leaf function whose argument is almost always the same
// small value. VRS profiles the argument, clones the callee and the call
// region, guards it with the paper's test sequence, and re-runs VRP inside
// the clone.
//
// Run: build/examples/specialize_hotloop
//
//===----------------------------------------------------------------------===//

#include "asm/Disassembler.h"
#include "pipeline/Pipeline.h"
#include "program/Builder.h"

#include <iostream>

using namespace og;

static RunOptions withArg(int64_t Arg0) {
  RunOptions O;
  O.ArgRegs = {Arg0};
  return O;
}

/// A program whose hot leaf receives an argument that is almost always 3.
static Workload makeHotArgWorkload() {
  ProgramBuilder PB;
  std::vector<uint8_t> Vals(512, 3);
  for (size_t I = 0; I < Vals.size(); I += 61)
    Vals[I] = static_cast<uint8_t>(I % 11);
  uint64_t Data = PB.addByteData(Vals);

  FunctionBuilder &Hot = PB.beginFunction("hot");
  Hot.block("entry");
  Hot.muli(RegT0, RegA0, 5);
  Hot.addi(RegT0, RegT0, 1);
  Hot.xor_(RegT1, RegT0, RegA0);
  Hot.slli(RegT2, RegA0, 2);
  Hot.add(RegV0, RegT1, RegT2);
  Hot.ret();

  FunctionBuilder &Main = PB.beginFunction("main");
  Main.block("entry");
  Main.mov(RegS1, RegA0);
  Main.ldi(RegS0, static_cast<int64_t>(Data));
  Main.ldi(RegS2, 0);
  Main.ldi(RegS3, 0);
  Main.block("loop");
  Main.cmplt(RegT0, RegS2, RegS1);
  Main.beq(RegT0, "done", "body");
  Main.block("body");
  Main.andi(RegT1, RegS2, 511);
  Main.add(RegT1, RegS0, RegT1);
  Main.ld(Width::B, RegA0, RegT1, 0); // almost always 3
  Main.jsr("hot");
  Main.add(RegS3, RegS3, RegV0);
  Main.addi(RegS2, RegS2, 1);
  Main.br("loop");
  Main.block("done");
  Main.out(RegS3);
  Main.halt();
  PB.setEntry("main");

  Workload W;
  W.Name = "hotarg";
  W.Prog = PB.finish();
  W.Train = withArg(600);
  W.Ref = withArg(8000);
  return W;
}

int main() {
  Workload W = makeHotArgWorkload();

  // The untransformed binary is decoded once and shared by every cell.
  DecodedProgram BaseDecode(W.Prog);

  PipelineConfig Base;
  Base.Sw = SoftwareMode::None;
  Base.Scheme = GatingScheme::None;
  PipelineResult B = runPipeline(W, Base, &BaseDecode);

  PipelineConfig Vrp;
  Vrp.Sw = SoftwareMode::Vrp;
  Vrp.Scheme = GatingScheme::Software;
  PipelineResult V = runPipeline(W, Vrp, &BaseDecode);

  PipelineConfig Vrs;
  Vrs.Sw = SoftwareMode::Vrs;
  Vrs.Scheme = GatingScheme::Software;
  Vrs.VrsTestCostNJ = 50;
  Vrs.CheckOutputEquivalence = true; // assert the oracle
  PipelineResult S = runPipeline(W, Vrs, &BaseDecode);

  std::cout << "VRS candidate funnel (paper Figure 4):\n"
            << "  points profiled:   " << S.Vrs.PointsProfiled << "\n"
            << "  specialized:       " << S.Vrs.PointsSpecialized << "\n"
            << "  dependent:         " << S.Vrs.PointsDependent << "\n"
            << "  no benefit:        " << S.Vrs.PointsNoBenefit << "\n"
            << "  static cloned:     " << S.Vrs.StaticSpecialized << "\n"
            << "  static eliminated: " << S.Vrs.StaticEliminated << "\n\n";

  if (!S.Vrs.GuardBlocks.empty()) {
    auto [F, BB] = S.Vrs.GuardBlocks.front();
    std::cout << "guard block (Section 3.4 test shape):\n";
    for (const Instruction &I : S.Transformed.Funcs[F].Blocks[BB].Insts)
      std::cout << "  " << I.str() << "\n";
    std::cout << "\n";
  }

  std::cout << "the specialized callee clone:\n";
  for (const Function &F : S.Transformed.Funcs)
    if (F.Name.find(".spec") != std::string::npos)
      disassembleFunction(S.Transformed, F, std::cout);

  std::cout << "\nrun-time share in specialized code: "
            << 100.0 * S.DynSpecializedFrac << "%\n"
            << "guard-comparison overhead:          "
            << 100.0 * S.DynGuardFrac << "%\n\n";

  std::cout << "energy savings vs baseline:\n"
            << "  VRP: " << 100.0 * V.Report.energySaving(B.Report) << "%\n"
            << "  VRS: " << 100.0 * S.Report.energySaving(B.Report) << "%\n"
            << "ED^2 savings vs baseline:\n"
            << "  VRP: " << 100.0 * V.Report.ed2Saving(B.Report) << "%\n"
            << "  VRS: " << 100.0 * S.Report.ed2Saving(B.Report) << "%\n";
  return 0;
}
