//===- examples/asm_pipeline.cpp - Binary-optimizer workflow ---------------==//
//
// The Alto-style workflow the paper assumes: take a final binary (here:
// textual assembly), run whole-program VRP over it — including the
// "library" function — and emit the re-encoded binary with narrow opcodes.
//
// Run: build/examples/asm_pipeline
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "asm/Disassembler.h"
#include "sim/ExecEngine.h"
#include "sim/Interpreter.h"
#include "vrp/Narrowing.h"

#include <iostream>

using namespace og;

static const char *Source = R"(; a tiny "application plus library" binary
.data
text:   .byte 104, 101, 108, 108, 111, 44, 32, 119, 111, 114, 108, 100
counts: .zero 512

.func main
entry:
  ldi   s0, =text
  ldi   s1, =counts
  ldi   s2, #0            ; i
loop:
  add   t0, s0, s2
  ldb   a0, 0(t0)         ; a0 = text[i], a byte
  jsr   classify          ; v0 = character class
  sll   t1, v0, #1
  add   t1, s1, t1
  ldh   t2, 0(t1)         ; counts[class]++
  add   t2, t2, #1
  sth   t2, 0(t1)
  add   s2, s2, #1
  cmplt t3, s2, #12
  bne   t3, loop, done
done:
  ldh   t4, 0(s1)         ; letters
  out   t4
  ldh   t5, 2(s1)         ; others
  out   t5
  halt

.func classify            ; the "library" function: 0 = letter, 1 = other
entry:
  cmplt t0, a0, #97       ; < 'a'?
  bne   t0, other, letter
letter:
  cmple t1, a0, #122      ; <= 'z'?
  beq   t1, other, isletter
isletter:
  ldi   v0, #0
  ret
other:
  ldi   v0, #1
  ret
)";

int main() {
  Expected<Program> P = assembleProgram(Source);
  if (!P) {
    std::cerr << "assembly error: " << P.error() << "\n";
    return 1;
  }

  // Decode once, run from the flat form (sim/ExecEngine.h).
  DecodedProgram Decoded(*P);
  RunResult Before = runProgram(Decoded, RunOptions());
  std::cout << "original output:  ";
  for (int64_t V : Before.Output)
    std::cout << V << " ";
  std::cout << "\n\n";

  Program Narrowed = *P;
  NarrowingReport Report = narrowProgram(Narrowed);

  std::cout << "=== after whole-program VRP (" << Report.NumNarrowed
            << " opcodes narrowed; note the interprocedural a0/v0 widths in "
               "classify) ===\n";
  disassembleProgram(Narrowed, std::cout);

  RunResult After = runProgram(Narrowed, RunOptions());
  std::cout << "narrowed output:  ";
  for (int64_t V : After.Output)
    std::cout << V << " ";
  std::cout << "\nequivalent: "
            << (Before.Output == After.Output ? "yes" : "NO") << "\n";
  return Before.Output == After.Output ? 0 : 1;
}
