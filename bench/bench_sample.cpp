//===- bench/bench_sample.cpp - Exact vs sampled simulation ----------------==//
//
// Phase-sampled estimation (src/sample/) against exact detailed
// simulation, across all eight workloads: wall-clock MIPS of both paths,
// the end-to-end speedup (including the profile + clustering plan phase)
// and the runner-only speedup (plan amortized, the sweep steady state),
// plus per-metric relative errors. A second table isolates the detailed
// pass: the same prepared artifacts run through whole-stream
// fast-forward, architectural replay, and window-parallel replay — all
// bit-identical by contract, so the columns are pure wall-clock. A third
// table measures the full standard sweep per workload through the
// experiment driver — checkpointed warm-up and cross-cell plan sharing
// included — which is the cost a `--sweep --sample` user sees. The
// OG_BENCH_JSON metrics record the aggregate "speedup" (geomean,
// runner-only, low-chase workloads), "max_rel_err" (largest
// |total-energy error| across all workloads), the detailed-pass
// "replay_speedup" / "replay_par_speedup" geomeans, and the sweep-level
// "sweep_e2e_speedup" / "sweep_max_rel_err" equivalents.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "sample/SampleRunner.h"
#include "sim/Superblock.h"

#include <chrono>
#include <cmath>
#include <thread>

using namespace ogbench;

namespace {

double seconds(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

void runTable() {
  TextTable T({"workload", "dyn insts", "ivals", "k", "win", "det%",
               "exact MIPS", "samp MIPS", "speedup", "e2e", "errE%", "errC%",
               "errIPC%"});
  double LogSum = 0.0;
  int LowChase = 0;
  double MaxErr = 0.0;
  for (const std::string &Name : allWorkloadNames()) {
    Workload W = makeWorkload(Name, benchScale());
    DecodedProgram DP(W.Prog);
    const UarchConfig UC;
    const EnergyCoefficients EC = EnergyCoefficients::defaults();

    // Exact detailed simulation (best of 2).
    EnergyReport Exact;
    double ExactS = 1e99;
    for (int Rep = 0; Rep < 2; ++Rep) {
      EnergyModel EM(GatingScheme::Software, EC);
      OooCore Core(UC, &EM);
      RunOptions O = W.Ref;
      O.Sink = &Core;
      auto T0 = std::chrono::steady_clock::now();
      runProgram(DP, O);
      ExactS = std::min(ExactS, seconds(T0));
      Exact = makeReport(EM, Core.finish());
    }

    // Plan phase: profile + clustering.
    SampleSpec Spec;
    Spec.IntervalLen = 2000;
    auto TP = std::chrono::steady_clock::now();
    IntervalProfiler Prof(DP, Spec.IntervalLen);
    RunOptions PO = W.Ref;
    PO.Sink = &Prof;
    RunResult ProfRun = runProgram(DP, PO);
    Prof.finish();
    SamplePlan Plan = makeSamplePlan(Prof, Spec);
    // The profile's block counts also seed the superblock plan the
    // estimation pass fast-forwards through (as the pipeline does).
    SuperblockPlan Sb(DP, ProfRun.Stats.BlockCounts);
    const double PlanS = seconds(TP);

    // Sampled estimation (best of 2).
    RunOptions SampRef = W.Ref;
    SampRef.Superblocks = &Sb;
    SampleEstimate Est;
    double SampS = 1e99;
    for (int Rep = 0; Rep < 2; ++Rep) {
      auto T0 = std::chrono::steady_clock::now();
      Est = runSampled(DP, SampRef, UC, GatingScheme::Software, EC, Plan, Spec);
      SampS = std::min(SampS, seconds(T0));
    }

    const SampleErrors Err = compareToExact(Est, Exact);
    const double Insts = static_cast<double>(Plan.TotalInsts);
    size_t Windows = 0;
    for (const auto &S : Plan.Samples)
      Windows += S.size();
    T.addRow({Name, std::to_string(Plan.TotalInsts),
              std::to_string(Plan.numIntervals()), std::to_string(Plan.K),
              std::to_string(Windows),
              TextTable::num(100.0 * Est.DetailedInsts / Insts, 1),
              TextTable::num(Insts / ExactS / 1e6, 1),
              TextTable::num(Insts / SampS / 1e6, 1),
              TextTable::num(ExactS / SampS, 2),
              TextTable::num(ExactS / (PlanS + SampS), 2),
              TextTable::num(100.0 * Err.Energy, 2),
              TextTable::num(100.0 * Err.Cycles, 2),
              TextTable::num(100.0 * Err.Ipc, 2)});
    MaxErr = std::max(MaxErr, std::fabs(Err.Energy));
    if (Plan.ChaseFrac < 0.01) {
      LogSum += std::log(ExactS / SampS);
      ++LowChase;
    }
  }
  T.print(std::cout);
  const double Speedup = LowChase ? std::exp(LogSum / LowChase) : 0.0;
  std::cout << "\nrunner-only speedup (geomean, low-chase workloads): "
            << TextTable::num(Speedup, 2) << "x\n"
            << "max |total-energy error|: " << TextTable::num(100 * MaxErr, 2)
            << "%\n"
            << "(pointer-chasing workloads warm most of the run by design "
               "and are excluded\nfrom the speedup aggregate; their errors "
               "still count. See README.)\n";
  jsonMetric("speedup", Speedup);
  jsonMetric("max_rel_err", MaxErr);
}

void runReplayTable() {
  // The detailed pass in isolation, three ways over the same prepared
  // artifacts: classic whole-stream fast-forward, architectural replay
  // on one thread, and window-parallel replay. All three produce
  // bit-identical stream estimates (SampleTest asserts it; the checks
  // below are a cheap tripwire), so the columns compare nothing but
  // wall-clock — this is the O(stream) -> O(windows) claim measured.
  //
  // The spec here is the sparse, one-off-request shape (few windows,
  // one sample per cluster): replay's win is the eliminated
  // fast-forward, so it scales with stream-to-window ratio. The dense
  // default plan — whose windows already dominate its detailed pass —
  // is what the error-focused table above measures.
  //
  // Every mode also pays one exact functional pass (no-sink,
  // superblock-fused — it produces SampleStreamEstimate::Run and is
  // O(stream) at full interpreter speed, in both modes, by design).
  // That shared floor is timed separately ("func s") and subtracted
  // from the mode totals, so the det columns and the speedup isolate
  // exactly the work the checkpoints restructure: fast-forward plus
  // windows versus windows alone.
  const unsigned ParJobs =
      std::min(8u, std::max(2u, std::thread::hardware_concurrency()));
  TextTable T({"workload", "win", "arch KB", "func s", "ff det s",
               "replay det s", "speedup", "par det s", "par speedup"});
  double LogSer = 0.0, LogPar = 0.0;
  int N = 0;
  for (const std::string &Name : allWorkloadNames()) {
    Workload W = makeWorkload(Name, benchScale());
    DecodedProgram DP(W.Prog);
    const UarchConfig UC;
    SampleSpec Spec;
    Spec.IntervalLen = 2000;
    Spec.K = 8;
    Spec.SamplesPerCluster = 1;
    SampleArtifacts Art = prepareSampled(DP, W.Ref, UC, Spec);
    SuperblockPlan Sb(DP, Art.BlockProfile);
    RunOptions Ref = W.Ref;
    Ref.Superblocks = &Sb;

    // Single runs here are a few milliseconds, and the det columns are
    // differences of mode totals — too small for best-of-2. Repeat each
    // timed region up to a wall budget and keep the minimum, which
    // converges on the true cost and keeps the subtraction stable.
    auto bestOf = [&](auto &&Fn) {
      double Best = 1e99, Spent = 0.0;
      for (int Rep = 0; Rep < 3 || (Spent < 0.25 && Rep < 24); ++Rep) {
        auto T0 = std::chrono::steady_clock::now();
        Fn();
        const double S = seconds(T0);
        Best = std::min(Best, S);
        Spent += S;
      }
      return Best;
    };
    auto timeStream = [&](const SampleRunPolicy &Policy,
                          SampleStreamEstimate &Out) {
      return bestOf(
          [&] { Out = runSampledStream(DP, Ref, UC, Art, Spec, Policy); });
    };

    // The shared functional floor: one exact no-sink run under the same
    // options both modes use for SampleStreamEstimate::Run.
    const double FuncS = bestOf([&] { runProgram(DP, Ref); });

    SampleRunPolicy FF;
    FF.ForceFastForward = true;
    SampleRunPolicy Serial;
    SampleRunPolicy Par;
    Par.WindowJobs = ParJobs;
    SampleStreamEstimate EF, ES, EP;
    const double FFS = timeStream(FF, EF);
    const double SerS = timeStream(Serial, ES);
    const double ParS = timeStream(Par, EP);
    if (ES.Uarch.Cycles != EF.Uarch.Cycles ||
        EP.Uarch.Cycles != EF.Uarch.Cycles || ES.Run.Output != EF.Run.Output)
      std::cout << "WARNING: replay/fast-forward estimates diverge for "
                << Name << " — fix before trusting this table\n";

    auto Det = [&](double Total) { return std::max(Total - FuncS, 1e-6); };
    const double FFDet = Det(FFS), SerDet = Det(SerS), ParDet = Det(ParS);
    size_t Windows = 0;
    for (const auto &S : Art.Plan.Samples)
      Windows += S.size();
    T.addRow({Name, std::to_string(Windows),
              std::to_string(Art.ArchBytes / 1024),
              TextTable::num(FuncS, 3), TextTable::num(FFDet, 3),
              TextTable::num(SerDet, 3), TextTable::num(FFDet / SerDet, 2),
              TextTable::num(ParDet, 3), TextTable::num(FFDet / ParDet, 2)});
    if (ES.Replayed) {
      LogSer += std::log(FFDet / SerDet);
      LogPar += std::log(FFDet / ParDet);
      ++N;
    } else {
      std::cout << Name << ": no architectural checkpoints ("
                << (Art.ArchBudgetExceeded ? "budget exceeded"
                                           : "capture disabled")
                << ") — excluded from the geomean\n";
    }
  }
  T.print(std::cout);
  const double Ser = N ? std::exp(LogSer / N) : 0.0;
  const double Parallel = N ? std::exp(LogPar / N) : 0.0;
  std::cout << "\ndetailed-pass replay speedup vs whole-stream fast-forward "
               "(geomean, shared\nfunctional pass excluded): "
            << TextTable::num(Ser, 2) << "x serial, "
            << TextTable::num(Parallel, 2) << "x at " << ParJobs
            << " window jobs\n";
  jsonMetric("replay_speedup", Ser);
  jsonMetric("replay_par_speedup", Parallel);
}

void runSweepTable() {
  // End-to-end sweep cost: the full standard configuration set per
  // workload through the experiment driver, exact vs sampled. This is
  // the number a user actually feels from `ogate-sim --sweep --sample`:
  // it includes profiling, clustering, checkpoint capture, and the
  // cross-cell SamplePlanCache (cells whose transformed binary leaves
  // the dynamic stream unchanged share one plan + warm-state set), so
  // chase-heavy workloads (li) are included in the geomean — restoring
  // captured warm state replaced their long per-cell warming shadows.
  TextTable T({"workload", "cells", "exact s", "sampled s", "e2e speedup",
               "maxErrE%"});
  double LogSum = 0.0;
  int N = 0;
  double MaxErr = 0.0;
  for (const std::string &Name : allWorkloadNames()) {
    std::vector<ExperimentSpec> Exact =
        makeStandardSweep({Name}, benchScale());
    std::vector<ExperimentSpec> Sampled = Exact;
    for (ExperimentSpec &S : Sampled) {
      S.Config.Sample.IntervalLen = 2000;
      S.Seed = specSeed(S);
    }

    SweepOptions O;
    O.Jobs = 1;
    auto TE = std::chrono::steady_clock::now();
    SweepResult RE = runSweep(Exact, O);
    const double ExactS = seconds(TE);
    auto TS = std::chrono::steady_clock::now();
    SweepResult RS = runSweep(Sampled, O);
    const double SampS = seconds(TS);
    if (!RE.AllOk || !RS.AllOk) {
      std::cout << "sweep failed for " << Name << ": "
                << (RE.AllOk ? RS.FirstError : RE.FirstError) << "\n";
      continue;
    }

    // Per-cell total-energy error of the sampled sweep against exact.
    double Err = 0.0;
    const auto CE = RE.Aggregate.sortedCells();
    const auto CS = RS.Aggregate.sortedCells();
    for (size_t I = 0; I < CE.size() && I < CS.size(); ++I)
      if (CE[I].Energy > 0)
        Err = std::max(Err, std::fabs(CS[I].Energy / CE[I].Energy - 1.0));

    T.addRow({Name, std::to_string(Exact.size()), TextTable::num(ExactS, 2),
              TextTable::num(SampS, 2), TextTable::num(ExactS / SampS, 2),
              TextTable::num(100.0 * Err, 2)});
    LogSum += std::log(ExactS / SampS);
    ++N;
    MaxErr = std::max(MaxErr, Err);
  }
  T.print(std::cout);
  const double Geomean = N ? std::exp(LogSum / N) : 0.0;
  std::cout << "\nsweep e2e speedup (geomean, all workloads incl. "
               "pointer-chasing): "
            << TextTable::num(Geomean, 2) << "x\n"
            << "max |total-energy error| across sweep cells: "
            << TextTable::num(100 * MaxErr, 2) << "%\n";
  jsonMetric("sweep_e2e_speedup", Geomean);
  jsonMetric("sweep_max_rel_err", MaxErr);
}

// --- micro-benchmarks of the sampling machinery.

void microProfile(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.05);
  DecodedProgram DP(W.Prog);
  uint64_t Insts = 0;
  for (auto _ : State) {
    IntervalProfiler Prof(DP, 2000);
    RunOptions O = W.Train;
    O.Sink = &Prof;
    RunResult R = runProgram(DP, O);
    Prof.finish();
    Insts += R.Stats.DynInsts;
    benchmark::DoNotOptimize(Prof.numIntervals());
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Insts), benchmark::Counter::kIsRate);
}

void microKmeans(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.25);
  DecodedProgram DP(W.Prog);
  IntervalProfiler Prof(DP, 2000);
  RunOptions O = W.Ref;
  O.Sink = &Prof;
  runProgram(DP, O);
  Prof.finish();
  SampleSpec Spec;
  Spec.IntervalLen = 2000;
  for (auto _ : State) {
    SamplePlan Plan = makeSamplePlan(Prof, Spec);
    benchmark::DoNotOptimize(Plan.K);
  }
}

void microSampledRun(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.25);
  DecodedProgram DP(W.Prog);
  SampleSpec Spec;
  Spec.IntervalLen = 2000;
  IntervalProfiler Prof(DP, Spec.IntervalLen);
  RunOptions O = W.Ref;
  O.Sink = &Prof;
  RunResult ProfRun = runProgram(DP, O);
  Prof.finish();
  SamplePlan Plan = makeSamplePlan(Prof, Spec);
  SuperblockPlan Sb(DP, ProfRun.Stats.BlockCounts);
  RunOptions SampRef = W.Ref;
  SampRef.Superblocks = &Sb;
  uint64_t Insts = 0;
  for (auto _ : State) {
    SampleEstimate Est =
        runSampled(DP, SampRef, UarchConfig(), GatingScheme::Software,
                   EnergyCoefficients::defaults(), Plan, Spec);
    Insts += Est.Run.Stats.DynInsts;
    benchmark::DoNotOptimize(Est.Report.TotalEnergy);
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Insts), benchmark::Counter::kIsRate);
}

BENCHMARK(microProfile);
BENCHMARK(microKmeans);
BENCHMARK(microSampledRun);

} // namespace

int main(int argc, char **argv) {
  banner("sample", "Sampled simulation",
         "exact vs phase-sampled detailed simulation");
  runTable();
  std::cout << "\n";
  runReplayTable();
  std::cout << "\n";
  runSweepTable();
  runMicro(argc, argv);
  return 0;
}
