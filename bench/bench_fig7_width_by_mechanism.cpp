//===- bench/bench_fig7_width_by_mechanism.cpp - Paper Figure 7 ------------==//
//
// Regenerates Figure 7: run-time instruction width distribution under no
// mechanism, VRP, and VRS at the 50nJ configuration.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig7", "Figure 7", "run-time instruction widths: none / VRP / VRS-50");

  Harness H;
  double None[4] = {}, Vrp[4] = {}, Vrs[4] = {};
  for (const Workload &W : H.workloads()) {
    double A[4], B[4], C[4];
    widthShares(H.baseline(W).RefStats, A);
    widthShares(H.vrp(W).RefStats, B);
    widthShares(H.vrs(W, 50).RefStats, C);
    for (int I = 0; I < 4; ++I) {
      None[I] += A[I] / H.workloads().size();
      Vrp[I] += B[I] / H.workloads().size();
      Vrs[I] += C[I] / H.workloads().size();
    }
  }

  TextTable T({"width", "none", "VRP", "VRS 50nJ"});
  const char *Names[] = {"8 bits", "16 bits", "32 bits", "64 bits"};
  for (int I = 3; I >= 0; --I)
    T.addRow({Names[I], TextTable::pct(None[I]), TextTable::pct(Vrp[I]),
              TextTable::pct(Vrs[I])});
  T.print(std::cout);
  std::cout << "\nPaper shape: 64-bit share falls from most of the\n"
               "instructions to ~40% under VRP and ~30% under VRS, with\n"
               "the 8-bit share growing in exchange.\n";

  benchmark::RegisterBenchmark("BM_NarrowProgram", microNarrow);
  runMicro(argc, argv);
  return 0;
}
