//===- bench/bench_fig14_hw_structure.cpp - Paper Figure 14 ----------------==//
//
// Regenerates Figure 14: per-structure energy savings of the hardware
// schemes, averaged over the suite.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig14", "Figure 14", "per-structure savings of the hardware schemes");

  Harness H;
  TextTable T({"processor part", "size compression",
               "significance compression"});
  for (unsigned SI = 0; SI < NumStructures; ++SI) {
    Structure S = static_cast<Structure>(SI);
    double Size = 0, Sig = 0;
    for (const Workload &W : H.workloads()) {
      const EnergyReport &B = H.baseline(W).Report;
      Size +=
          H.hwSize(W).Report.structureSaving(B, S) / H.workloads().size();
      Sig += H.hwSignificance(W).Report.structureSaving(B, S) /
             H.workloads().size();
    }
    T.addRow({structureName(S), TextTable::pct(Size), TextTable::pct(Sig)});
  }
  double PSize = 0, PSig = 0;
  for (const Workload &W : H.workloads()) {
    const EnergyReport &B = H.baseline(W).Report;
    PSize += H.hwSize(W).Report.energySaving(B) / H.workloads().size();
    PSig +=
        H.hwSignificance(W).Report.energySaving(B) / H.workloads().size();
  }
  T.addRow({"Processor", TextTable::pct(PSize), TextTable::pct(PSig)});
  T.print(std::cout);
  std::cout << "\nPaper shape: the value-carrying structures benefit most;\n"
               "hardware schemes also reach values software analysis must\n"
               "treat conservatively, at the price of tag storage.\n";

  benchmark::RegisterBenchmark("BM_UarchPowerSim", microUarch);
  runMicro(argc, argv);
  return 0;
}
