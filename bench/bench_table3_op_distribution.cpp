//===- bench/bench_table3_op_distribution.cpp - Paper Table 3 --------------==//
//
// Regenerates Table 3: the dynamic distribution of operation types and,
// within each type, the share executed at each width after VRP. Ordered by
// dynamic occurrence, like the paper.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>

using namespace ogbench;

int main(int argc, char **argv) {
  banner("table3", "Table 3", "distribution of operation types under VRP (dynamic)");

  Harness H;
  uint64_t ClassWidth[18][4] = {};
  uint64_t Total = 0;
  for (const Workload &W : H.workloads()) {
    const ExecStats &S = H.vrp(W).RefStats;
    for (unsigned C = 0; C < 18; ++C)
      for (unsigned B = 0; B < 4; ++B) {
        ClassWidth[C][B] += S.ClassWidth[C][B];
        Total += S.ClassWidth[C][B];
      }
  }

  // The paper's Table 3 covers the integer ALU classes.
  const OpClass Rows[] = {OpClass::Add,  OpClass::Msk, OpClass::Cmp,
                          OpClass::Shift, OpClass::Sub, OpClass::And,
                          OpClass::Or,   OpClass::Xor, OpClass::Cmov,
                          OpClass::Mul};
  struct RowData {
    OpClass C;
    double Pct;
    double W64, W32, W16, W8;
  };
  std::vector<RowData> Data;
  for (OpClass C : Rows) {
    unsigned CI = static_cast<unsigned>(C);
    uint64_t N = ClassWidth[CI][0] + ClassWidth[CI][1] + ClassWidth[CI][2] +
                 ClassWidth[CI][3];
    RowData R;
    R.C = C;
    R.Pct = Total ? 100.0 * N / Total : 0.0;
    R.W64 = N ? 100.0 * ClassWidth[CI][3] / N : 0.0;
    R.W32 = N ? 100.0 * ClassWidth[CI][2] / N : 0.0;
    R.W16 = N ? 100.0 * ClassWidth[CI][1] / N : 0.0;
    R.W8 = N ? 100.0 * ClassWidth[CI][0] / N : 0.0;
    Data.push_back(R);
  }
  std::sort(Data.begin(), Data.end(),
            [](const RowData &A, const RowData &B) { return A.Pct > B.Pct; });

  TextTable T({"op type", "% of run-time insts", "64b", "32b", "16b", "8b"});
  for (const RowData &R : Data)
    T.addRow({opClassName(R.C), TextTable::num(R.Pct, 2),
              TextTable::num(R.W64, 2), TextTable::num(R.W32, 2),
              TextTable::num(R.W16, 2), TextTable::num(R.W8, 2)});
  T.print(std::cout);
  std::cout << "\nPaper shape: ADD dominates (27.66%), MUL is rare (0.18%)\n"
               "and mostly wide, which is why Section 4.3 adds no narrow\n"
               "MUL opcodes.\n";

  benchmark::RegisterBenchmark("BM_Interpreter", microInterp);
  runMicro(argc, argv);
  return 0;
}
