//===- bench/bench_fig4_profiled_points.cpp - Paper Figure 4 ---------------==//
//
// Regenerates Figure 4: per benchmark, the fate of the profiled points —
// specialized / dependent on another point / no benefit — with the total
// number of profiled points on top of each bar (here: a column).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig4", "Figure 4", "distribution of profiled points after specialization");

  Harness H;
  TextTable T({"benchmark", "points", "specialized", "dependent",
               "no benefit"});
  uint64_t TotP = 0, TotS = 0, TotD = 0, TotN = 0;
  for (const Workload &W : H.workloads()) {
    const VrsReport &R = H.vrs(W, 50).Vrs;
    auto pct = [&](uint64_t N) {
      return R.PointsProfiled
                 ? TextTable::pct(static_cast<double>(N) / R.PointsProfiled)
                 : std::string("-");
    };
    T.addRow({W.Name, std::to_string(R.PointsProfiled),
              pct(R.PointsSpecialized), pct(R.PointsDependent),
              pct(R.PointsNoBenefit)});
    TotP += R.PointsProfiled;
    TotS += R.PointsSpecialized;
    TotD += R.PointsDependent;
    TotN += R.PointsNoBenefit;
  }
  auto tpct = [&](uint64_t N) {
    return TotP ? TextTable::pct(static_cast<double>(N) / TotP)
                : std::string("-");
  };
  T.addRow({"Average", std::to_string(TotP), tpct(TotS), tpct(TotD),
            tpct(TotN)});
  T.print(std::cout);
  std::cout << "\nPaper shape: most profiled points (88%) produce no\n"
               "benefit, ~2% are subsumed by another point's region, ~7%\n"
               "are specialized.\n";

  benchmark::RegisterBenchmark("BM_Interpreter", microInterp);
  runMicro(argc, argv);
  return 0;
}
