//===- bench/bench_fig11_ed2.cpp - Paper Figure 11 -------------------------==//
//
// Regenerates Figure 11: energy-delay^2 savings per benchmark for VRP and
// the VRS sweep — the paper's headline software-only metric (14% average).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig11", "Figure 11", "energy-delay^2 savings: VRP and VRS");

  Harness H;
  TextTable T({"benchmark", "VRP", "VRS 110nJ", "VRS 70nJ", "VRS 50nJ",
               "VRS 30nJ"});
  std::vector<double> Avg(5, 0.0);
  for (const Workload &W : H.workloads()) {
    const EnergyReport &B = H.baseline(W).Report;
    std::vector<std::string> Row{W.Name};
    double V = H.vrp(W).Report.ed2Saving(B);
    Row.push_back(TextTable::pct(V));
    Avg[0] += V / H.workloads().size();
    const double Costs[] = {110, 70, 50, 30};
    for (int I = 0; I < 4; ++I) {
      double S = H.vrs(W, Costs[I]).Report.ed2Saving(B);
      Row.push_back(TextTable::pct(S));
      Avg[I + 1] += S / H.workloads().size();
    }
    T.addRow(Row);
  }
  std::vector<std::string> AvgRow{"Average"};
  for (double A : Avg)
    AvgRow.push_back(TextTable::pct(A));
  T.addRow(AvgRow);
  T.print(std::cout);
  std::cout << "\nPaper shape: VRP a little above 5% ED^2, VRS close to\n"
               "15% on average (25% for gcc), because VRS stacks energy\n"
               "cuts on top of small speedups.\n";

  benchmark::RegisterBenchmark("BM_UarchPowerSim", microUarch);
  runMicro(argc, argv);
  return 0;
}
