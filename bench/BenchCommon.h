//===- bench/BenchCommon.h - Shared experiment harness -----------*- C++ -*-===//
//
// Part of the ogate project (CGO 2004 operand-gating reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plumbing shared by the per-table/figure bench binaries: one cached
/// pipeline run per (workload, configuration) cell, the standard
/// configuration set of the paper's evaluation, aligned table printing,
/// and a google-benchmark hook that times the machinery behind the figure.
/// Cache fills run through the experiment driver, so a bench can warm
/// many cells across worker threads with prefetch()/prefetchStandard().
///
/// Environment: OG_BENCH_SCALE scales the workload ref inputs
/// (default 0.25; the paper-sized runs use 1.0). OG_BENCH_JOBS sets the
/// driver worker count for cache fills (default: all hardware threads).
/// OG_BENCH_JSON=<dir> additionally writes every experiment cell the
/// bench computed (plus any explicitly recorded wall-clock metrics) as a
/// schema-versioned `BENCH_<id>.json` report into that directory, in the
/// src/report/ format `ogate-report diff` consumes.
///
//===----------------------------------------------------------------------===//

#ifndef OG_BENCH_BENCHCOMMON_H
#define OG_BENCH_BENCHCOMMON_H

#include "driver/Driver.h"
#include "driver/ThreadPool.h"
#include "pipeline/Pipeline.h"
#include "report/ReportSchema.h"
#include "service/SweepService.h"
#include "support/Table.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>

namespace ogbench {

using namespace og;

inline double benchScale() {
  if (const char *S = std::getenv("OG_BENCH_SCALE"))
    return std::atof(S);
  return 0.25;
}

inline unsigned benchJobs() {
  if (const char *S = std::getenv("OG_BENCH_JOBS")) {
    int N = std::atoi(S);
    if (N > 0)
      return static_cast<unsigned>(N);
    // Unparseable values keep the documented default rather than
    // silently degrading to serial.
  }
  return ThreadPool::defaultJobs();
}

/// Structured-output state of the running bench binary: the report id
/// (set by banner()), every experiment cell the Harness computed, and
/// any wall-clock metrics recorded with jsonMetric(). Written out once
/// by writeBenchJson() when OG_BENCH_JSON names a directory.
struct BenchJsonState {
  std::string Id;
  JsonValue Cells = JsonValue::array();
  JsonValue Metrics = JsonValue::object();
  bool Written = false;
};

inline BenchJsonState &benchJsonState() {
  static BenchJsonState S;
  return S;
}

inline bool benchJsonEnabled() {
  const char *Dir = std::getenv("OG_BENCH_JSON");
  return Dir && *Dir;
}

/// Records a named wall-clock measurement (MIPS, seconds). Lands under
/// the document's "metrics" object, which `ogate-report diff` compares
/// with a relative tolerance rather than exactly.
inline void jsonMetric(const std::string &Name, double Value) {
  benchJsonState().Metrics.set(Name, JsonValue::number(Value));
}

/// Writes $OG_BENCH_JSON/BENCH_<id>.json (no-op without the env var;
/// exits non-zero if the write fails, so CI cannot upload a truncated
/// artifact). Cells appear in cache-fill order, which is deterministic
/// for a fixed bench binary.
inline void writeBenchJson() {
  BenchJsonState &S = benchJsonState();
  if (!benchJsonEnabled() || S.Written || S.Id.empty())
    return;
  S.Written = true;
  JsonValue Doc = makeReportRoot("bench");
  Doc.set("bench", JsonValue::str(S.Id));
  Doc.set("scale", JsonValue::number(benchScale()));
  Doc.set("cells", S.Cells);
  if (S.Metrics.size())
    Doc.set("metrics", S.Metrics);
  const std::string Dir = std::getenv("OG_BENCH_JSON");
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec); // write below reports failure
  std::string Path = Dir + "/BENCH_" + S.Id + ".json";
  std::string Err;
  if (!writeJsonFile(Path, Doc, &Err)) {
    std::cerr << "bench: " << Err << "\n";
    std::exit(1);
  }
  std::cerr << "bench: wrote " << Path << "\n";
}

/// Cached pipeline cells keyed by (workload, config label).
class Harness {
public:
  Harness() : Workloads(makeAllWorkloads(benchScale())) {}

  const std::vector<Workload> &workloads() const { return Workloads; }

  /// Fills the cache for every not-yet-cached spec through the sweep
  /// service's full-result path (the bench is the service's third
  /// client, next to batch ogate-sim and ogate-serve), sharded across
  /// OG_BENCH_JOBS workers. Successive prefetch() calls share the
  /// service's workload builds and sample-plan artifacts. Results land
  /// in the cache in spec order, so the tables a bench prints afterwards
  /// do not depend on the worker count.
  void prefetch(const std::vector<ExperimentSpec> &Specs) {
    std::vector<ExperimentSpec> Todo;
    for (const ExperimentSpec &S : Specs)
      if (!Cache.count({S.Workload, S.ConfigLabel}))
        Todo.push_back(S);
    if (Todo.empty())
      return;
    SweepResult R = Service.runFull(
        Todo,
        static_cast<unsigned>(std::min<size_t>(benchJobs(), Todo.size())));
    if (!R.AllOk) {
      std::cerr << "bench: sweep failed: " << R.FirstError << "\n";
      std::exit(1);
    }
    for (size_t I = 0; I < Todo.size(); ++I) {
      recordCell(Todo[I].Workload, Todo[I].ConfigLabel, R.Outcomes[I].Result);
      Cache.emplace(std::make_pair(Todo[I].Workload, Todo[I].ConfigLabel),
                    std::move(R.Outcomes[I].Result));
    }
  }

  /// Warms the full workload x standard-configuration matrix in parallel.
  void prefetchStandard() { prefetch(makeStandardSweep(benchScale())); }

  /// The cache is keyed by (workload name, label): a cell warmed by
  /// prefetch() — which rebuilds registry workloads at benchScale() —
  /// satisfies a later run() with the same key. Only pass workloads
  /// whose content matches their registry name at benchScale() (every
  /// current bench does); a miss honors the exact Workload passed in.
  const PipelineResult &run(const Workload &W, const std::string &Label,
                            const PipelineConfig &Config) {
    auto Key = std::make_pair(W.Name, Label);
    auto It = Cache.find(Key);
    if (It == Cache.end()) {
      It = Cache.emplace(Key, runPipeline(W, Config)).first;
      recordCell(W.Name, Label, It->second);
    }
    return It->second;
  }

  // --- The paper's standard configurations.
  const PipelineResult &baseline(const Workload &W) {
    PipelineConfig C;
    C.Sw = SoftwareMode::None;
    C.Scheme = GatingScheme::None;
    return run(W, "baseline", C);
  }
  const PipelineResult &conventionalVrp(const Workload &W) {
    PipelineConfig C;
    C.Sw = SoftwareMode::ConventionalVrp;
    C.Scheme = GatingScheme::Software;
    return run(W, "conv-vrp", C);
  }
  const PipelineResult &vrp(const Workload &W) {
    PipelineConfig C;
    C.Sw = SoftwareMode::Vrp;
    C.Scheme = GatingScheme::Software;
    return run(W, "vrp", C);
  }
  const PipelineResult &vrs(const Workload &W, double CostNJ) {
    PipelineConfig C;
    C.Sw = SoftwareMode::Vrs;
    C.Scheme = GatingScheme::Software;
    C.VrsTestCostNJ = CostNJ;
    return run(W, "vrs-" + std::to_string(static_cast<int>(CostNJ)), C);
  }
  const PipelineResult &hwSignificance(const Workload &W) {
    PipelineConfig C;
    C.Sw = SoftwareMode::None;
    C.Scheme = GatingScheme::HwSignificance;
    return run(W, "hw-sig", C);
  }
  const PipelineResult &hwSize(const Workload &W) {
    PipelineConfig C;
    C.Sw = SoftwareMode::None;
    C.Scheme = GatingScheme::HwSize;
    return run(W, "hw-size", C);
  }
  /// SW+HW cooperative schemes (§4.7): software mode + hardware tags.
  const PipelineResult &combined(const Workload &W, SoftwareMode Sw,
                                 GatingScheme HwScheme, double CostNJ = 50) {
    PipelineConfig C;
    C.Sw = Sw;
    C.Scheme = HwScheme;
    C.VrsTestCostNJ = CostNJ;
    std::string Label = std::string("comb-") + softwareModeName(Sw) + "-" +
                        gatingSchemeName(HwScheme);
    return run(W, Label, C);
  }

private:
  /// Every first computation of a cell lands in the bench JSON report
  /// (when enabled); repeat run() hits are cache reads, not new results.
  /// Bench artifacts carry the "opt" analysis-cache counters group
  /// unconditionally (they have no shape-pinned baseline to protect).
  static void recordCell(const std::string &Workload, const std::string &Label,
                         const PipelineResult &R) {
    if (benchJsonEnabled())
      benchJsonState().Cells.push(
          cellToJson(Workload, Label, R, &R.OptStats));
  }

  std::vector<Workload> Workloads;
  /// Harness-lifetime sweep engine for prefetch fills (no persistent
  /// cell cache: benches need full PipelineResults, which the reduced
  /// cell cache does not carry).
  SweepService Service{ServiceOptions()};
  std::map<std::pair<std::string, std::string>, PipelineResult> Cache;
};

/// The VRS test-cost sweep of Figure 8.
inline const double VrsCostSweep[] = {110, 90, 70, 50, 30};

/// Prints the standard bench banner and names the structured report:
/// \p Id is the file-safe report id ("fig10", "table1"; the JSON lands
/// in $OG_BENCH_JSON/BENCH_<Id>.json), \p Exp the display title.
inline void banner(const char *Id, const char *Exp, const char *What) {
  benchJsonState().Id = Id;
  std::cout << "\n=== " << Exp << ": " << What << " ===\n"
            << "(workload scale " << benchScale()
            << "; shapes, not absolute values, are the reproduction "
               "target)\n\n";
}

/// Dynamic width distribution (share of executed instructions per opcode
/// width) from functional-run stats.
inline void widthShares(const ExecStats &S, double Out[4]) {
  uint64_t Total = S.classWidthTotal();
  for (unsigned W = 0; W < 4; ++W) {
    uint64_t N = 0;
    for (unsigned C = 0; C < 18; ++C)
      N += S.ClassWidth[C][W];
    Out[W] = Total ? static_cast<double>(N) / Total : 0.0;
  }
}

/// google-benchmark micro-benchmarks of the machinery behind the figures;
/// each binary registers the ones it exercises, then calls runMicro().
inline void runMicro(int argc, char **argv) {
  // The structured report is complete once the figure's tables printed;
  // write it before the micro timings so a micro-benchmark failure can
  // not cost CI the artifact.
  writeBenchJson();
  benchmark::Initialize(&argc, argv);
  std::cout << "\n--- google-benchmark timings of the underlying machinery "
               "---\n";
  benchmark::RunSpecifiedBenchmarks();
}

inline void microNarrow(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.05);
  for (auto _ : State) {
    Program P = W.Prog;
    NarrowingReport R = narrowProgram(P);
    benchmark::DoNotOptimize(R.NumNarrowed);
  }
}

inline void microInterp(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.05);
  DecodedProgram Decoded(W.Prog); // decoded once, reused across runs
  uint64_t Insts = 0;
  for (auto _ : State) {
    RunResult R = runProgram(Decoded, W.Train);
    Insts += R.Stats.DynInsts;
    benchmark::DoNotOptimize(R.Output.data());
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Insts), benchmark::Counter::kIsRate);
}

inline void microUarch(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.05);
  DecodedProgram Decoded(W.Prog);
  uint64_t Insts = 0;
  for (auto _ : State) {
    EnergyModel EM(GatingScheme::Software);
    OooCore Core(UarchConfig(), &EM);
    RunOptions O = W.Train;
    O.Sink = &Core;
    runProgram(Decoded, O);
    UarchStats S = Core.finish();
    Insts += S.Insts;
    benchmark::DoNotOptimize(S.Cycles);
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Insts), benchmark::Counter::kIsRate);
}

} // namespace ogbench

#endif // OG_BENCH_BENCHCOMMON_H
