//===- bench/bench_fig12_data_size_dist.cpp - Paper Figure 12 --------------==//
//
// Regenerates Figure 12: the distribution of dynamic value sizes in bytes
// (significant bytes of every produced/stored value). This distribution
// motivated the hardware size-compression buckets {1, 2, 5, 8}: a large
// 1-byte population and an address peak at 5 bytes.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig12", "Figure 12", "dynamic data size distribution (significant bytes)");

  Harness H;
  uint64_t Hist[9] = {};
  uint64_t Total = 0;
  for (const Workload &W : H.workloads()) {
    const ExecStats &S = H.baseline(W).RefStats;
    for (int B = 1; B <= 8; ++B) {
      Hist[B] += S.ValueSizeBytes[B];
      Total += S.ValueSizeBytes[B];
    }
  }

  TextTable T({"size (bytes)", "% of values"});
  double AvgBits = 0;
  for (int B = 1; B <= 8; ++B) {
    double Frac = Total ? static_cast<double>(Hist[B]) / Total : 0.0;
    AvgBits += Frac * B * 8;
    T.addRow({std::to_string(B), TextTable::pct(Frac)});
  }
  T.print(std::cout);
  std::cout << "\nAverage value size: " << TextTable::num(AvgBits, 1)
            << " bits (paper: 26.7 bits under the {1,2,5,8} encoding).\n"
            << "Paper shape: ~43% of values need a single byte; memory\n"
               "addresses produce a secondary bump past 4 bytes, which is\n"
               "why size compression uses a 5-byte bucket instead of 4.\n";

  benchmark::RegisterBenchmark("BM_Interpreter", microInterp);
  runMicro(argc, argv);
  return 0;
}
