//===- bench/bench_fig15_combined_ed2.cpp - Paper Figure 15 ----------------==//
//
// Regenerates Figure 15: energy-delay^2 savings for the software schemes,
// the hardware schemes, and the cooperative combinations (Section 4.7's
// headline: 28% for VRS + significance compression).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig15", "Figure 15", "ED^2 savings of software, hardware and combined "
                      "schemes");

  Harness H;
  TextTable T({"benchmark", "VRP", "VRS 50", "hdw size", "hdw signif",
               "VRP+size", "VRP+signif", "VRS+size", "VRS+signif"});
  std::vector<double> Avg(8, 0.0);
  for (const Workload &W : H.workloads()) {
    const EnergyReport &B = H.baseline(W).Report;
    double Cells[8] = {
        H.vrp(W).Report.ed2Saving(B),
        H.vrs(W, 50).Report.ed2Saving(B),
        H.hwSize(W).Report.ed2Saving(B),
        H.hwSignificance(W).Report.ed2Saving(B),
        H.combined(W, SoftwareMode::Vrp, GatingScheme::Combined)
            .Report.ed2Saving(B),
        H.combined(W, SoftwareMode::Vrp, GatingScheme::HwSignificance)
            .Report.ed2Saving(B),
        H.combined(W, SoftwareMode::Vrs, GatingScheme::Combined)
            .Report.ed2Saving(B),
        H.combined(W, SoftwareMode::Vrs, GatingScheme::HwSignificance)
            .Report.ed2Saving(B),
    };
    std::vector<std::string> Row{W.Name};
    for (int I = 0; I < 8; ++I) {
      Row.push_back(TextTable::pct(Cells[I]));
      Avg[I] += Cells[I] / H.workloads().size();
    }
    T.addRow(Row);
  }
  std::vector<std::string> AvgRow{"Average"};
  for (double A : Avg)
    AvgRow.push_back(TextTable::pct(A));
  T.addRow(AvgRow);
  T.print(std::cout);
  std::cout << "\nPaper shape: software-only ~14%, hardware-only ~15%, the\n"
               "cooperative schemes on top (28% for the best combination);\n"
               "hardware and software savings compose because the compiler\n"
               "gates statically-provable bytes and the tags catch the\n"
               "rest dynamically.\n";

  benchmark::RegisterBenchmark("BM_UarchPowerSim", microUarch);
  runMicro(argc, argv);
  return 0;
}
