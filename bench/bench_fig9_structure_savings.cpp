//===- bench/bench_fig9_structure_savings.cpp - Paper Figure 9 -------------==//
//
// Regenerates Figure 9: energy savings per processor structure for VRP and
// the VRS configurations (all structures, including those VRP cannot touch).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig9", "Figure 9", "per-structure energy savings: VRP and VRS configs");

  Harness H;
  const double Costs[] = {110, 50};
  TextTable T({"processor part", "VRP", "VRS 110nJ", "VRS 50nJ"});
  for (unsigned SI = 0; SI < NumStructures; ++SI) {
    Structure S = static_cast<Structure>(SI);
    double V = 0, C110 = 0, C50 = 0;
    for (const Workload &W : H.workloads()) {
      const EnergyReport &B = H.baseline(W).Report;
      V += H.vrp(W).Report.structureSaving(B, S) / H.workloads().size();
      C110 += H.vrs(W, Costs[0]).Report.structureSaving(B, S) /
              H.workloads().size();
      C50 += H.vrs(W, Costs[1]).Report.structureSaving(B, S) /
             H.workloads().size();
    }
    T.addRow({structureName(S), TextTable::pct(V), TextTable::pct(C110),
              TextTable::pct(C50)});
  }
  double PV = 0, P110 = 0, P50 = 0;
  for (const Workload &W : H.workloads()) {
    const EnergyReport &B = H.baseline(W).Report;
    PV += H.vrp(W).Report.energySaving(B) / H.workloads().size();
    P110 += H.vrs(W, 110).Report.energySaving(B) / H.workloads().size();
    P50 += H.vrs(W, 50).Report.energySaving(B) / H.workloads().size();
  }
  T.addRow({"Processor", TextTable::pct(PV), TextTable::pct(P110),
            TextTable::pct(P50)});
  T.print(std::cout);
  std::cout << "\nPaper shape: the data-carrying structures (IQ, rename\n"
               "buffers, register file, FUs, result bus) save 15-25%; the\n"
               "address-dominated and instruction-side structures barely\n"
               "move; VRS adds a little everywhere by removing\n"
               "instructions.\n";

  benchmark::RegisterBenchmark("BM_UarchPowerSim", microUarch);
  runMicro(argc, argv);
  return 0;
}
