//===- bench/bench_ablation_isa_useful.cpp - Section 4.3 ablations ---------==//
//
// Quantifies the design choices DESIGN.md flags for ablation:
//
//  1. The opcode extensions of Section 4.3: how much energy do the new
//     byte/word ALU opcodes buy over the stock Alpha width sets?
//  2. Useful-range propagation (Section 2.2.5) on/off.
//  3. The paper's rule that useful demand does not flow through
//     arithmetic, vs the aggressive variant that lets it.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

namespace {

PipelineConfig configFor(IsaPolicy Policy, bool Useful, bool ThroughArith) {
  PipelineConfig C;
  C.Sw = Useful ? SoftwareMode::Vrp : SoftwareMode::ConventionalVrp;
  C.Scheme = GatingScheme::Software;
  C.Narrow.Policy = Policy;
  C.Narrow.UsefulThroughArith = ThroughArith;
  return C;
}

} // namespace

int main(int argc, char **argv) {
  banner("ablation", "Ablation", "ISA policy (Section 4.3) and useful-range variants");

  Harness H;
  struct Cell {
    const char *Label;
    PipelineConfig Config;
  } Cells[] = {
      {"BaseAlpha, ranges only",
       configFor(IsaPolicy::BaseAlpha, false, false)},
      {"BaseAlpha, + useful", configFor(IsaPolicy::BaseAlpha, true, false)},
      {"Extended, ranges only",
       configFor(IsaPolicy::Extended, false, false)},
      {"Extended, + useful (paper)",
       configFor(IsaPolicy::Extended, true, false)},
      {"Extended, useful thru arith",
       configFor(IsaPolicy::Extended, true, true)},
  };

  TextTable T({"configuration", "energy saving", "64-bit dyn share"});
  for (Cell &C : Cells) {
    double Sav = 0, Wide = 0;
    for (const Workload &W : H.workloads()) {
      const EnergyReport &B = H.baseline(W).Report;
      const PipelineResult &R = H.run(W, C.Label, C.Config);
      Sav += R.Report.energySaving(B) / H.workloads().size();
      double Shares[4];
      widthShares(R.RefStats, Shares);
      Wide += Shares[3] / H.workloads().size();
    }
    T.addRow({C.Label, TextTable::pct(Sav), TextTable::pct(Wide)});
  }
  T.print(std::cout);
  std::cout
      << "\nSection 4.3's argument in numbers: without the new opcodes\n"
         "(BaseAlpha keeps W/Q adds and Q-only logicals) much of the range\n"
         "information cannot be encoded; the extension unlocks it. The\n"
         "through-arithmetic variant narrows further but relies on\n"
         "demand-safety arguments the paper deliberately avoids.\n";

  benchmark::RegisterBenchmark("BM_NarrowProgram", microNarrow);
  runMicro(argc, argv);
  return 0;
}
