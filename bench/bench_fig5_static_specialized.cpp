//===- bench/bench_fig5_static_specialized.cpp - Paper Figure 5 ------------==//
//
// Regenerates Figure 5: static instructions inside specialized regions,
// split into those kept (with narrowed ranges) and those eliminated by
// constant propagation / DCE after single-value specialization.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig5", "Figure 5", "static instructions specialized at compile time");

  Harness H;
  TextTable T({"benchmark", "static in regions", "kept specialized",
               "eliminated"});
  uint64_t TotAll = 0, TotElim = 0;
  for (const Workload &W : H.workloads()) {
    const VrsReport &R = H.vrs(W, 50).Vrs;
    uint64_t All = R.StaticSpecialized;
    uint64_t Elim = R.StaticEliminated;
    T.addRow({W.Name, std::to_string(All),
              All ? TextTable::pct(1.0 - double(Elim) / All)
                  : std::string("-"),
              All ? TextTable::pct(double(Elim) / All) : std::string("-")});
    TotAll += All;
    TotElim += Elim;
  }
  T.addRow({"Average", std::to_string(TotAll),
            TotAll ? TextTable::pct(1.0 - double(TotElim) / TotAll)
                   : std::string("-"),
            TotAll ? TextTable::pct(double(TotElim) / TotAll)
                   : std::string("-")});
  T.print(std::cout);
  std::cout << "\nPaper shape: most instructions are kept with tighter\n"
               "ranges; benchmarks specializing on single values (m88ksim,\n"
               "vortex in the paper) eliminate a large share outright.\n";

  benchmark::RegisterBenchmark("BM_NarrowProgram", microNarrow);
  runMicro(argc, argv);
  return 0;
}
