//===- bench/bench_fig6_runtime_specialized.cpp - Paper Figure 6 -----------==//
//
// Regenerates Figure 6: the share of run-time instructions executing
// inside specialized regions, and the overhead share spent in the guard
// comparisons.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig6", "Figure 6", "run-time specialized instructions and guard overhead");

  Harness H;
  TextTable T({"benchmark", "specialized insts", "guard comparisons"});
  double TotS = 0, TotG = 0;
  for (const Workload &W : H.workloads()) {
    const PipelineResult &R = H.vrs(W, 50);
    T.addRow({W.Name, TextTable::pct(R.DynSpecializedFrac),
              TextTable::pct(R.DynGuardFrac)});
    TotS += R.DynSpecializedFrac / H.workloads().size();
    TotG += R.DynGuardFrac / H.workloads().size();
  }
  T.addRow({"Average", TextTable::pct(TotS), TextTable::pct(TotG)});
  T.print(std::cout);
  std::cout << "\nPaper shape: >15% of executed instructions are\n"
               "specialized on average (up to 35% for perl), while guard\n"
               "comparisons stay around 1%.\n";

  benchmark::RegisterBenchmark("BM_Interpreter", microInterp);
  runMicro(argc, argv);
  return 0;
}
