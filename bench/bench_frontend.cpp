//===- bench/bench_frontend.cpp - RV32I binary frontend throughput ---------==//
//
// Tracks the binary frontend's perf budget and its end-to-end payoff:
// decode and parse+lift wall-clock over the checked-in RV32I fixtures,
// then the table that justifies the subsystem — once a real binary is
// lifted into the IR, VRP narrows it and the gated configs save energy,
// same as the hand-written workloads. Not a paper figure: the CGO'04
// evaluation is source-level, the frontend extends it to compiled code.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "frontend/ElfFile.h"
#include "frontend/Lifter.h"
#include "frontend/Rv32Decoder.h"

#include <chrono>

using namespace ogbench;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char *Fixtures[] = {"checksum.elf", "sieve.elf", "strhash.elf"};

std::string fixturePath(const char *Name) {
  return std::string(OG_RV32_FIXTURE_DIR "/") + Name;
}

/// The executable words of \p E, in address order (the decode corpus).
std::vector<uint32_t> textWords(const ElfFile &E) {
  std::vector<uint32_t> Words;
  for (const ElfSegment &S : E.segments()) {
    if (!S.isExec())
      continue;
    const uint8_t *B = E.segmentBytes(S);
    for (uint32_t Off = 0; Off + 4 <= S.FileSize; Off += 4)
      Words.push_back(static_cast<uint32_t>(B[Off]) |
                      static_cast<uint32_t>(B[Off + 1]) << 8 |
                      static_cast<uint32_t>(B[Off + 2]) << 16 |
                      static_cast<uint32_t>(B[Off + 3]) << 24);
  }
  return Words;
}

/// Best-of-\p Reps wall-clock of \p Fn, in seconds.
template <typename FnT> double bestOf(unsigned Reps, FnT Fn) {
  double Best = 1e100;
  for (unsigned R = 0; R < Reps; ++R) {
    double T0 = now();
    Fn();
    Best = std::min(Best, now() - T0);
  }
  return Best;
}

void microDecodeText(benchmark::State &State) {
  Expected<ElfFile> E = ElfFile::load(fixturePath("checksum.elf"));
  if (!E)
    State.SkipWithError(E.error().c_str());
  const std::vector<uint32_t> Words = textWords(*E);
  for (auto _ : State)
    for (uint32_t W : Words) {
      Expected<RvInst> I = decodeRv32(W);
      benchmark::DoNotOptimize(I ? I->Op : RvOp::Ecall);
    }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Words.size()));
}

void microLiftChecksum(benchmark::State &State) {
  const std::string Path = fixturePath("checksum.elf");
  for (auto _ : State) {
    Expected<LiftedProgram> L = liftElfFile(Path);
    if (!L)
      State.SkipWithError(L.error().c_str());
    benchmark::DoNotOptimize(L->Stats.IrInstructions);
  }
}

} // namespace

int main(int argc, char **argv) {
  banner("frontend", "frontend",
         "RV32I decode/lift throughput and lifted-workload gating impact");

  const unsigned Reps = 5;
  TextTable Lift({"fixture", "text words", "decode Mw/s", "lift ms", "funcs",
                  "blocks", "ir insts"});
  for (const char *Name : Fixtures) {
    Expected<ElfFile> E = ElfFile::load(fixturePath(Name));
    if (!E) {
      std::cerr << "bench: " << E.error() << "\n";
      return 1;
    }
    const std::vector<uint32_t> Words = textWords(*E);

    // Decode throughput over the real text segment (repeated to get
    // above timer resolution; the decoder is allocation-free).
    const unsigned DecodeLoops = 20000;
    double DecodeSec = bestOf(Reps, [&] {
      for (unsigned L = 0; L < DecodeLoops; ++L)
        for (uint32_t W : Words) {
          Expected<RvInst> I = decodeRv32(W);
          benchmark::DoNotOptimize(I ? I->Op : RvOp::Ecall);
        }
    });
    double MwPerSec =
        static_cast<double>(Words.size()) * DecodeLoops / DecodeSec / 1e6;

    // Full-path lift: read + parse + discover + emit + verify.
    const std::string Path = fixturePath(Name);
    LiftStats Stats;
    double LiftSec = bestOf(Reps, [&] {
      Expected<LiftedProgram> L = liftElfFile(Path);
      if (!L) {
        std::cerr << "bench: " << L.error() << "\n";
        std::exit(1);
      }
      Stats = L->Stats;
    });

    Lift.addRow({Name, std::to_string(Words.size()),
                 TextTable::num(MwPerSec, 1), TextTable::num(LiftSec * 1e3, 3),
                 std::to_string(Stats.Functions), std::to_string(Stats.Blocks),
                 std::to_string(Stats.IrInstructions)});
    jsonMetric(std::string(Name) + ".decode-mwords-per-sec", MwPerSec);
    jsonMetric(std::string(Name) + ".lift-seconds", LiftSec);
  }
  Lift.print(std::cout);

  // The payoff table: lifted binaries through the standard baseline and
  // VRP cells. Narrowing must be nonzero — RV32I's 32-bit ALU ops enter
  // the IR at width W, and VRP shrinks the subword-range ones further.
  std::cout << "\n";
  TextTable Vrp({"fixture", "narrowed", "width-bearing", "narrow%",
                 "base energy", "vrp energy", "energy delta%"});
  Harness H;
  for (const char *Name : Fixtures) {
    Workload W = makeWorkload("elf:" + fixturePath(Name), benchScale());
    const PipelineResult &Base = H.baseline(W);
    const PipelineResult &Gated = H.vrp(W);
    double NarrowPct =
        Gated.Narrowing.NumWidthBearing
            ? 100.0 * static_cast<double>(Gated.Narrowing.NumNarrowed) /
                  static_cast<double>(Gated.Narrowing.NumWidthBearing)
            : 0.0;
    double DeltaPct = 100.0 * Gated.Report.energySaving(Base.Report);
    Vrp.addRow({Name, std::to_string(Gated.Narrowing.NumNarrowed),
                std::to_string(Gated.Narrowing.NumWidthBearing),
                TextTable::num(NarrowPct, 1),
                TextTable::num(Base.Report.TotalEnergy, 3),
                TextTable::num(Gated.Report.TotalEnergy, 3),
                TextTable::num(DeltaPct, 1)});
    jsonMetric(std::string(Name) + ".vrp-narrowed-pct", NarrowPct);
    jsonMetric(std::string(Name) + ".vrp-energy-saving-pct", DeltaPct);
  }
  Vrp.print(std::cout);
  std::cout << "\nDecode loops the fixture's real text segment; lift is the "
               "full liftElfFile path\n(read + parse + CFG discovery + IR "
               "emission + verify), best of " << Reps << " reps.\n";

  benchmark::RegisterBenchmark("BM_DecodeText", microDecodeText);
  benchmark::RegisterBenchmark("BM_LiftChecksum", microLiftChecksum);
  runMicro(argc, argv);
  return 0;
}
