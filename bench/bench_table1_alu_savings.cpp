//===- bench/bench_table1_alu_savings.cpp - Paper Table 1 ------------------==//
//
// Regenerates Table 1: "Energy savings for ALU operations (nJoules)",
// rows = destination width, columns = source width. Ours is the per-width
// ALU energy function the VRS cost/benefit model uses; the paper column is
// printed alongside for comparison.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "vrs/EnergyTables.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("table1", "Table 1", "energy savings for ALU operations (nJ)");

  EnergyParams E;
  const Width Order[] = {Width::Q, Width::W, Width::H, Width::B};
  TextTable T({"dest \\ src", "64", "32", "16", "8", "", "paper row"});
  for (Width D : Order) {
    std::vector<std::string> Row;
    Row.push_back(std::to_string(widthBits(D)));
    std::string PaperRow;
    for (Width S : Order) {
      if (S == D) {
        Row.push_back("-");
        PaperRow += "- ";
        continue;
      }
      Row.push_back(TextTable::num(E.aluSaving(S, D), 0));
      PaperRow += TextTable::num(paperTable1Saving(D, S), 0) + " ";
    }
    Row.push_back("");
    Row.push_back(PaperRow);
    T.addRow(Row);
  }
  T.print(std::cout);
  std::cout << "\nEvery delta matches the paper's matrix by construction;\n"
               "the VRS benefit model (Section 3.1) consumes these values.\n";

  benchmark::RegisterBenchmark("BM_NarrowProgram", microNarrow);
  runMicro(argc, argv);
  return 0;
}
