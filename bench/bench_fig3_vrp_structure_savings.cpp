//===- bench/bench_fig3_vrp_structure_savings.cpp - Paper Figure 3 ---------==//
//
// Regenerates Figure 3: VRP energy savings per processor structure, plus
// the whole-processor column. Shape targets: functional units highest
// (~18% in the paper), queues/register file/result bus close behind
// (~15%), LSQ and L1 D-cache minor (addresses), overall around 6%.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig3", "Figure 3", "energy savings with VRP per processor structure");

  Harness H;
  const Structure Rows[] = {Structure::IQueue, Structure::RenameBufs,
                            Structure::Lsq,    Structure::RegFile,
                            Structure::DCacheL1, Structure::IntAlu,
                            Structure::ResultBus};
  double Sav[NumStructures] = {};
  double Proc = 0;
  for (const Workload &W : H.workloads()) {
    const EnergyReport &B = H.baseline(W).Report;
    const EnergyReport &V = H.vrp(W).Report;
    for (unsigned S = 0; S < NumStructures; ++S)
      Sav[S] += V.structureSaving(B, static_cast<Structure>(S)) /
                H.workloads().size();
    Proc += V.energySaving(B) / H.workloads().size();
  }

  TextTable T({"processor part", "energy saving"});
  for (Structure S : Rows)
    T.addRow({structureName(S),
              TextTable::pct(Sav[static_cast<unsigned>(S)])});
  T.addRow({"Processor", TextTable::pct(Proc)});
  T.print(std::cout);
  std::cout << "\nPaper shape: FUs ~18%, IQ/rename buffers/register file/\n"
               "result bus ~15%, LSQ and L1-D minor (they move addresses),\n"
               "overall processor ~6%.\n";

  benchmark::RegisterBenchmark("BM_UarchPowerSim", microUarch);
  runMicro(argc, argv);
  return 0;
}
