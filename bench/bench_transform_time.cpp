//===- bench/bench_transform_time.cpp - SoftwareMode transform time --------==//
//
// Tracks the transform-throughput trajectory: wall-clock per SoftwareMode
// software transformation (conventional-VRP narrow, VRP narrow, full VRS
// specialize) per workload, all through the opt/ layer the real pipeline
// uses (one AnalysisManager per transformed program). Not a paper figure
// — this is the other half of the perf budget bench_sim_throughput does
// not see: every sweep cell pays the transform before it simulates, and
// VRS in particular re-runs VRP several times over a shared analysis
// cache. The VRS column also reports the manager's hit rate so a cache
// regression shows up next to the seconds it costs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "opt/TransformPipeline.h"

#include <chrono>

using namespace ogbench;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measurement {
  double Seconds = 0.0; ///< best of Reps
  StatisticSet Opt;     ///< manager counters of the best run
};

/// Runs the \p Sw transform on a fresh copy of \p W's program \p Reps
/// times; keeps the fastest run's wall-clock and counters.
Measurement measureTransform(const Workload &W, SoftwareMode Sw,
                             unsigned Reps) {
  Measurement Best;
  Best.Seconds = 1e100;
  for (unsigned R = 0; R < Reps; ++R) {
    Program P = W.Prog;
    StatisticSet Stats;
    AnalysisManager AM(P, &Stats);
    TransformContext Ctx;
    Ctx.Narrow.UseUsefulWidths = Sw != SoftwareMode::ConventionalVrp;
    if (Sw == SoftwareMode::Vrs)
      Ctx.Train = W.Train;
    TransformPipeline TP = makeSoftwareModePipeline(Sw);
    double T0 = now();
    TP.run(P, AM, Ctx);
    double Elapsed = now() - T0;
    benchmark::DoNotOptimize(Ctx.Narrowing.NumNarrowed);
    if (Elapsed < Best.Seconds) {
      Best.Seconds = Elapsed;
      Best.Opt = Stats;
    }
  }
  return Best;
}

void microSpecializeVrs(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.05);
  for (auto _ : State) {
    Program P = W.Prog;
    AnalysisManager AM(P);
    narrowProgram(P, AM);
    VrsOptions VO;
    VrsReport R = specializeProgram(P, AM, W.Train, VO);
    benchmark::DoNotOptimize(R.PointsSpecialized);
  }
}

} // namespace

int main(int argc, char **argv) {
  banner("transform_time", "transform-time",
         "SoftwareMode transform wall-clock per workload");

  const unsigned Reps = 3;
  TextTable T({"workload", "conv-vrp ms", "vrp ms", "vrs ms", "vrs hits",
               "vrs misses", "hit%"});
  Harness H;
  for (const Workload &W : H.workloads()) {
    Measurement Conv =
        measureTransform(W, SoftwareMode::ConventionalVrp, Reps);
    Measurement Vrp = measureTransform(W, SoftwareMode::Vrp, Reps);
    Measurement Vrs = measureTransform(W, SoftwareMode::Vrs, Reps);

    uint64_t Hits = Vrs.Opt.get("analysis-hits");
    uint64_t Misses = Vrs.Opt.get("analysis-misses");
    double HitPct = Hits + Misses
                        ? 100.0 * static_cast<double>(Hits) /
                              static_cast<double>(Hits + Misses)
                        : 0.0;
    T.addRow({W.Name, TextTable::num(Conv.Seconds * 1e3, 3),
              TextTable::num(Vrp.Seconds * 1e3, 3),
              TextTable::num(Vrs.Seconds * 1e3, 3), std::to_string(Hits),
              std::to_string(Misses), TextTable::num(HitPct, 1)});

    jsonMetric(W.Name + ".conv-vrp-transform-seconds", Conv.Seconds);
    jsonMetric(W.Name + ".vrp-transform-seconds", Vrp.Seconds);
    jsonMetric(W.Name + ".vrs-transform-seconds", Vrs.Seconds);
    jsonMetric(W.Name + ".vrs-analysis-hit-pct", HitPct);
  }
  T.print(std::cout);
  std::cout << "\nBest of " << Reps
            << " reps per cell; each run transforms a fresh program copy "
               "through the mode's\nTransformPipeline with one shared "
               "AnalysisManager (exactly what a sweep cell does).\nThe "
               "hit columns are the manager's cache traffic during the "
               "VRS run.\n";

  // microNarrow is the shared BenchCommon narrow micro (its convenience
  // narrowProgram overload constructs the same one-shot manager).
  benchmark::RegisterBenchmark("BM_NarrowVrp", microNarrow);
  benchmark::RegisterBenchmark("BM_SpecializeVrs", microSpecializeVrs);
  runMicro(argc, argv);
  return 0;
}
