//===- bench/bench_fig10_exec_time.cpp - Paper Figure 10 -------------------==//
//
// Regenerates Figure 10: execution-time savings per benchmark for the VRS
// configurations (VRP itself cannot change cycle counts: it only
// re-encodes opcodes).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig10", "Figure 10", "execution time savings under VRS");

  Harness H;
  TextTable T({"benchmark", "VRS 110nJ", "VRS 70nJ", "VRS 30nJ",
               "VRP (check)"});
  double Avg[3] = {};
  for (const Workload &W : H.workloads()) {
    const EnergyReport &B = H.baseline(W).Report;
    std::vector<std::string> Row{W.Name};
    const double Costs[] = {110, 70, 30};
    for (int I = 0; I < 3; ++I) {
      double S = H.vrs(W, Costs[I]).Report.timeSaving(B);
      Row.push_back(TextTable::pct(S));
      Avg[I] += S / H.workloads().size();
    }
    // VRP must be exactly 0 (the §4.4 claim); printed as a sanity column.
    Row.push_back(TextTable::pct(H.vrp(W).Report.timeSaving(B)));
    T.addRow(Row);
  }
  T.addRow({"Average", TextTable::pct(Avg[0]), TextTable::pct(Avg[1]),
            TextTable::pct(Avg[2]), "0.00%"});
  T.print(std::cout);
  std::cout << "\nPaper shape: small but mostly positive speedups (up to\n"
               "~4%), with at most one configuration/benchmark slightly\n"
               "negative; VRP is exactly neutral.\n";

  benchmark::RegisterBenchmark("BM_UarchPowerSim", microUarch);
  runMicro(argc, argv);
  return 0;
}
