//===- bench/bench_fig8_energy_savings.cpp - Paper Figure 8 ----------------==//
//
// Regenerates Figure 8: total energy savings per benchmark for VRP and the
// VRS test-cost sweep (110/90/70/50/30 nJ).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig8", "Figure 8", "energy savings per benchmark: VRP and the VRS sweep");

  Harness H;
  TextTable T({"benchmark", "VRP", "VRS 110nJ", "VRS 90nJ", "VRS 70nJ",
               "VRS 50nJ", "VRS 30nJ"});
  std::vector<double> Avg(6, 0.0);
  for (const Workload &W : H.workloads()) {
    const EnergyReport &B = H.baseline(W).Report;
    std::vector<std::string> Row{W.Name};
    double V = H.vrp(W).Report.energySaving(B);
    Row.push_back(TextTable::pct(V));
    Avg[0] += V / H.workloads().size();
    unsigned Col = 1;
    for (double Cost : VrsCostSweep) {
      double S = H.vrs(W, Cost).Report.energySaving(B);
      Row.push_back(TextTable::pct(S));
      Avg[Col++] += S / H.workloads().size();
    }
    T.addRow(Row);
  }
  std::vector<std::string> AvgRow{"Average"};
  for (double A : Avg)
    AvgRow.push_back(TextTable::pct(A));
  T.addRow(AvgRow);
  T.print(std::cout);
  std::cout << "\nPaper shape: VRP around 6% on average, VRS around 9%;\n"
               "the five VRS cost configurations behave similarly because\n"
               "the chosen candidates barely change across them.\n";

  benchmark::RegisterBenchmark("BM_UarchPowerSim", microUarch);
  runMicro(argc, argv);
  return 0;
}
