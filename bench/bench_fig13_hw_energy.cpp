//===- bench/bench_fig13_hw_energy.cpp - Paper Figure 13 -------------------==//
//
// Regenerates Figure 13: total energy savings of the two hardware
// operand-gating schemes (size compression and significance compression)
// per benchmark.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig13", "Figure 13", "energy savings of the hardware schemes");

  Harness H;
  TextTable T({"benchmark", "size compression", "significance compression"});
  double AvgSize = 0, AvgSig = 0;
  for (const Workload &W : H.workloads()) {
    const EnergyReport &B = H.baseline(W).Report;
    double Size = H.hwSize(W).Report.energySaving(B);
    double Sig = H.hwSignificance(W).Report.energySaving(B);
    T.addRow({W.Name, TextTable::pct(Size), TextTable::pct(Sig)});
    AvgSize += Size / H.workloads().size();
    AvgSig += Sig / H.workloads().size();
  }
  T.addRow({"Average", TextTable::pct(AvgSize), TextTable::pct(AvgSig)});
  T.print(std::cout);
  std::cout << "\nPaper shape: around 15% average energy reduction for the\n"
               "hardware approach; significance compression gates finer\n"
               "but pays 7 tag bits to size compression's 2, so the two\n"
               "land close together.\n";

  benchmark::RegisterBenchmark("BM_UarchPowerSim", microUarch);
  runMicro(argc, argv);
  return 0;
}
