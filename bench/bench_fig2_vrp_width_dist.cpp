//===- bench/bench_fig2_vrp_width_dist.cpp - Paper Figure 2 ----------------==//
//
// Regenerates Figure 2: dynamic instruction distribution by width under
// conventional VRP (ranges only) vs the proposed VRP (ranges + useful
// widths). The useful extension must shift weight out of the 64-bit bar.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ogbench;

int main(int argc, char **argv) {
  banner("fig2", "Figure 2", "dynamic width distribution: conventional vs proposed "
                     "VRP");

  Harness H;
  double Conv[4] = {}, Prop[4] = {};
  for (const Workload &W : H.workloads()) {
    double C[4], P[4];
    widthShares(H.conventionalVrp(W).RefStats, C);
    widthShares(H.vrp(W).RefStats, P);
    for (int I = 0; I < 4; ++I) {
      Conv[I] += C[I] / H.workloads().size();
      Prop[I] += P[I] / H.workloads().size();
    }
  }

  TextTable T({"width", "Conventional VRP", "Proposed VRP"});
  const char *Names[] = {"8 bits", "16 bits", "32 bits", "64 bits"};
  for (int I = 0; I < 4; ++I)
    T.addRow({Names[I], TextTable::pct(Conv[I]), TextTable::pct(Prop[I])});
  T.print(std::cout);
  std::cout << "\nPaper shape: the proposed (useful-range) VRP cuts the\n"
               "64-bit share (51% -> 42% in the paper) and grows the narrow\n"
               "bars. Measured 64-bit delta: "
            << TextTable::pct(Conv[3] - Prop[3]) << ".\n";

  benchmark::RegisterBenchmark("BM_NarrowProgram", microNarrow);
  runMicro(argc, argv);
  return 0;
}
