//===- bench/bench_sim_throughput.cpp - Interpreter MIPS -------------------==//
//
// Tracks the simulation-speed trajectory of the pre-decoded execution
// engine: no-sink interpreter MIPS per dispatch variant (portable switch,
// computed-goto threading, threading + profile-driven superblock fusion),
// plus the sink-stack trajectory (counting sink, full OoO+power stack).
// Not a paper figure — this is the perf budget every sweep and bench
// above the interpreter spends.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "power/EnergyModel.h"
#include "sim/ExecEngine.h"
#include "sim/Superblock.h"
#include "uarch/Core.h"

#include <chrono>
#include <cmath>

using namespace ogbench;

namespace {

/// The cheapest possible batched consumer: counts records and keeps a
/// trivial checksum so the batch delivery cannot be optimized away.
struct CountingSink final : TraceSink {
  uint64_t Records = 0;
  uint64_t PcSum = 0;
  void onBatch(const DynInst *Batch, size_t N) override {
    Records += N;
    for (size_t I = 0; I < N; ++I)
      PcSum += Batch[I].Pc;
  }
};

/// Times \p Reps calls of \p RunOnce (which returns the instructions it
/// executed); returns MIPS.
template <typename RunFn>
double measureMips(unsigned Reps, RunFn &&RunOnce) {
  uint64_t Insts = 0;
  auto Start = std::chrono::steady_clock::now();
  for (unsigned R = 0; R < Reps; ++R)
    Insts += RunOnce();
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Seconds > 0.0 ? static_cast<double>(Insts) / Seconds / 1e6 : 0.0;
}

void microInterpNoSink(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.05);
  DecodedProgram Decoded(W.Prog);
  uint64_t Insts = 0;
  for (auto _ : State) {
    RunResult R = runProgram(Decoded, W.Train);
    Insts += R.Stats.DynInsts;
    benchmark::DoNotOptimize(R.Stats.DynInsts);
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Insts), benchmark::Counter::kIsRate);
}

void microInterpCountingSink(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.05);
  DecodedProgram Decoded(W.Prog);
  uint64_t Insts = 0;
  for (auto _ : State) {
    CountingSink Sink;
    RunOptions O = W.Train;
    O.Sink = &Sink;
    runProgram(Decoded, O);
    Insts += Sink.Records;
    benchmark::DoNotOptimize(Sink.PcSum);
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Insts), benchmark::Counter::kIsRate);
}

void microDecode(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.05);
  for (auto _ : State) {
    DecodedProgram Decoded(W.Prog);
    benchmark::DoNotOptimize(Decoded.numInsts());
  }
}

} // namespace

int main(int argc, char **argv) {
  banner("sim-throughput", "sim-throughput",
         "interpreter MIPS by dispatch variant and sink stack");

  const unsigned Reps = 3;
  TextTable T({"workload", "dyn insts", "switch", "threaded", "thr+superblk",
               "sb cover", "counting sink", "OoO+power sink"});
  Harness H;
  double GeoSwitch = 1.0, GeoThreaded = 1.0, GeoSb = 1.0;
  unsigned N = 0;
  for (const Workload &W : H.workloads()) {
    DecodedProgram Decoded(W.Prog);
    // Plan construction (one cheap profiling run + formation) is a
    // per-program one-time cost like the decode itself; both sit outside
    // the timed region so the columns compare steady-state dispatch.
    SuperblockPlan Plan = buildSelfProfiledPlan(Decoded, W.Ref);
    uint64_t Dyn = 0;
    double Coverage = 0.0;

    double Switch = measureMips(Reps, [&] {
      RunOptions O = W.Ref;
      O.Dispatch = DispatchMode::Switch;
      RunResult R = runProgram(Decoded, O);
      Dyn = R.Stats.DynInsts;
      return R.Stats.DynInsts;
    });

    double Threaded = measureMips(Reps, [&] {
      RunOptions O = W.Ref;
      O.Dispatch = DispatchMode::Threaded; // resolves to switch if absent
      RunResult R = runProgram(Decoded, O);
      return R.Stats.DynInsts;
    });

    double Sb = measureMips(Reps, [&] {
      RunOptions O = W.Ref;
      O.Superblocks = &Plan;
      RunResult R = runProgram(Decoded, O);
      Coverage = R.Engine.coverage(R.Stats.DynInsts);
      return R.Stats.DynInsts;
    });

    double Counting = measureMips(Reps, [&] {
      CountingSink Sink;
      RunOptions O = W.Ref;
      O.Sink = &Sink;
      runProgram(Decoded, O);
      benchmark::DoNotOptimize(Sink.PcSum);
      return Sink.Records;
    });

    double Full = measureMips(Reps, [&] {
      EnergyModel EM(GatingScheme::Software);
      OooCore Core(UarchConfig(), &EM);
      RunOptions O = W.Ref;
      O.Sink = &Core;
      runProgram(Decoded, O);
      UarchStats S = Core.finish();
      benchmark::DoNotOptimize(S.Cycles);
      return S.Insts;
    });

    GeoSwitch *= Switch;
    GeoThreaded *= Threaded;
    GeoSb *= Sb;
    ++N;
    T.addRow({W.Name, std::to_string(Dyn), TextTable::num(Switch, 1),
              TextTable::num(Threaded, 1), TextTable::num(Sb, 1),
              TextTable::num(100.0 * Coverage, 1) + "%",
              TextTable::num(Counting, 1), TextTable::num(Full, 1)});
    jsonMetric(W.Name + ".nosink-mips-switch", Switch);
    jsonMetric(W.Name + ".nosink-mips-threaded", Threaded);
    jsonMetric(W.Name + ".nosink_mips", Sb);
    jsonMetric(W.Name + ".superblock_coverage", Coverage);
    jsonMetric(W.Name + ".no-sink-mips", Sb); // headline: fastest variant
    jsonMetric(W.Name + ".counting-sink-mips", Counting);
    jsonMetric(W.Name + ".ooo-power-sink-mips", Full);
  }
  if (N) {
    GeoSwitch = std::pow(GeoSwitch, 1.0 / N);
    GeoThreaded = std::pow(GeoThreaded, 1.0 / N);
    GeoSb = std::pow(GeoSb, 1.0 / N);
    T.addRow({"geomean", "", TextTable::num(GeoSwitch, 1),
              TextTable::num(GeoThreaded, 1), TextTable::num(GeoSb, 1), "",
              "", ""});
    jsonMetric("geomean.nosink-mips-switch", GeoSwitch);
    jsonMetric("geomean.nosink-mips-threaded", GeoThreaded);
    jsonMetric("geomean.nosink_mips", GeoSb);
  }
  T.print(std::cout);
  std::cout << "\nMIPS = dynamic instructions / wall-clock seconds over "
            << Reps << " reps; threaded resolves to switch on builds "
               "without computed goto.\nThe thr+superblk column (threaded "
               "dispatch + profile-driven superblock fusion)\nis the "
               "no-sink ceiling sweeps inherit; counting isolates "
               "batch-delivery overhead;\nthe full stack is what an exact "
               "sweep cell actually pays.\n";

  benchmark::RegisterBenchmark("BM_InterpNoSink", microInterpNoSink);
  benchmark::RegisterBenchmark("BM_InterpCountingSink",
                               microInterpCountingSink);
  benchmark::RegisterBenchmark("BM_InterpOooPowerSink", microUarch);
  benchmark::RegisterBenchmark("BM_DecodeProgram", microDecode);
  runMicro(argc, argv);
  return 0;
}
