//===- bench/bench_sim_throughput.cpp - Interpreter MIPS -------------------==//
//
// Tracks the simulation-speed trajectory of the pre-decoded execution
// engine: interpreter MIPS per workload with (a) no trace sink, (b) a
// minimal counting sink (pure batching overhead), and (c) the full
// OoO-timing + power-accounting sink stack. Not a paper figure — this is
// the perf budget every sweep and bench above the interpreter spends.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "power/EnergyModel.h"
#include "sim/ExecEngine.h"
#include "uarch/Core.h"

#include <chrono>

using namespace ogbench;

namespace {

/// The cheapest possible batched consumer: counts records and keeps a
/// trivial checksum so the batch delivery cannot be optimized away.
struct CountingSink final : TraceSink {
  uint64_t Records = 0;
  uint64_t PcSum = 0;
  void onBatch(const DynInst *Batch, size_t N) override {
    Records += N;
    for (size_t I = 0; I < N; ++I)
      PcSum += Batch[I].Pc;
  }
};

/// Times \p Reps calls of \p RunOnce (which returns the instructions it
/// executed); returns MIPS.
template <typename RunFn>
double measureMips(unsigned Reps, RunFn &&RunOnce) {
  uint64_t Insts = 0;
  auto Start = std::chrono::steady_clock::now();
  for (unsigned R = 0; R < Reps; ++R)
    Insts += RunOnce();
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Seconds > 0.0 ? static_cast<double>(Insts) / Seconds / 1e6 : 0.0;
}

void microInterpNoSink(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.05);
  DecodedProgram Decoded(W.Prog);
  uint64_t Insts = 0;
  for (auto _ : State) {
    RunResult R = runProgram(Decoded, W.Train);
    Insts += R.Stats.DynInsts;
    benchmark::DoNotOptimize(R.Stats.DynInsts);
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Insts), benchmark::Counter::kIsRate);
}

void microInterpCountingSink(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.05);
  DecodedProgram Decoded(W.Prog);
  uint64_t Insts = 0;
  for (auto _ : State) {
    CountingSink Sink;
    RunOptions O = W.Train;
    O.Sink = &Sink;
    runProgram(Decoded, O);
    Insts += Sink.Records;
    benchmark::DoNotOptimize(Sink.PcSum);
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Insts), benchmark::Counter::kIsRate);
}

void microDecode(benchmark::State &State) {
  Workload W = makeWorkload("compress", 0.05);
  for (auto _ : State) {
    DecodedProgram Decoded(W.Prog);
    benchmark::DoNotOptimize(Decoded.numInsts());
  }
}

} // namespace

int main(int argc, char **argv) {
  banner("sim-throughput", "sim-throughput",
         "interpreter MIPS by sink stack (pre-decoded engine)");

  const unsigned Reps = 3;
  TextTable T({"workload", "dyn insts", "no sink", "counting sink",
               "OoO+power sink"});
  Harness H;
  for (const Workload &W : H.workloads()) {
    DecodedProgram Decoded(W.Prog);
    uint64_t Dyn = 0;

    double NoSink = measureMips(Reps, [&] {
      RunResult R = runProgram(Decoded, W.Ref);
      Dyn = R.Stats.DynInsts;
      return R.Stats.DynInsts;
    });

    double Counting = measureMips(Reps, [&] {
      CountingSink Sink;
      RunOptions O = W.Ref;
      O.Sink = &Sink;
      runProgram(Decoded, O);
      benchmark::DoNotOptimize(Sink.PcSum);
      return Sink.Records;
    });

    double Full = measureMips(Reps, [&] {
      EnergyModel EM(GatingScheme::Software);
      OooCore Core(UarchConfig(), &EM);
      RunOptions O = W.Ref;
      O.Sink = &Core;
      runProgram(Decoded, O);
      UarchStats S = Core.finish();
      benchmark::DoNotOptimize(S.Cycles);
      return S.Insts;
    });

    T.addRow({W.Name, std::to_string(Dyn), TextTable::num(NoSink, 1),
              TextTable::num(Counting, 1), TextTable::num(Full, 1)});
    jsonMetric(W.Name + ".no-sink-mips", NoSink);
    jsonMetric(W.Name + ".counting-sink-mips", Counting);
    jsonMetric(W.Name + ".ooo-power-sink-mips", Full);
  }
  T.print(std::cout);
  std::cout << "\nMIPS = dynamic instructions / wall-clock seconds over "
            << Reps << " reps.\nThe no-sink column is the flat-dispatch "
               "ceiling; counting isolates batch-delivery\noverhead; the "
               "full stack is what a sweep cell actually pays.\n";

  benchmark::RegisterBenchmark("BM_InterpNoSink", microInterpNoSink);
  benchmark::RegisterBenchmark("BM_InterpCountingSink",
                               microInterpCountingSink);
  benchmark::RegisterBenchmark("BM_InterpOooPowerSink", microUarch);
  benchmark::RegisterBenchmark("BM_DecodeProgram", microDecode);
  runMicro(argc, argv);
  return 0;
}
